// Package core implements MemSnap: per-thread uCheckpoints over the
// simulated virtual-memory and storage substrates.
//
// The package mirrors the paper's API (Table 4):
//
//	msnap_open    -> Process.Open
//	msnap_persist -> Context.Persist
//	msnap_wait    -> Context.Wait
//
// A Region is a named memory mapping backed by an object in the COW
// object store, mapped at the same virtual address on every open so
// persisted pointers stay valid across crashes. A Context is one
// application thread; MemSnap tracks each Context's dirty set
// individually and Persist writes exactly that set — no other
// thread's uncommitted work — as one atomic uCheckpoint.
package core

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"memsnap/internal/disk"
	"memsnap/internal/mem"
	"memsnap/internal/objstore"
	"memsnap/internal/sim"
	"memsnap/internal/tlb"
	"memsnap/internal/vm"
)

// PageSize is the uCheckpoint granularity.
const PageSize = vm.PageSize

// RegionBase is the virtual address of the first MemSnap region: the
// high end of the address space is reserved for MemSnap mappings so
// every region gets the same address on every open.
const RegionBase uint64 = 0x7000_0000_0000

// RegionSlot is the address-space stride between regions.
const RegionSlot uint64 = 1 << 32 // 4 GiB per region slot

// Flags alter Persist behavior.
type Flags int

const (
	// MSSync makes Persist block until the uCheckpoint is durable
	// (the default).
	MSSync Flags = 1 << iota
	// MSAsync makes Persist return after initiating the IO; use Wait
	// to block on durability.
	MSAsync
	// MSGlobal persists the dirty sets of all threads in the process,
	// not just the caller's (the classic SLS whole-process semantics).
	MSGlobal
)

// System is one simulated machine: physical memory, TLBs, the disk
// array and the object store.
type System struct {
	costs *sim.CostModel
	phys  *mem.PhysMem
	tlbs  *tlb.System
	arr   *disk.Array
	store *objstore.Store
}

// Options configures NewSystem.
type Options struct {
	Costs *sim.CostModel
	// CPUs is the simulated CPU count (default 24, the paper's dual
	// Xeon 4116).
	CPUs int
	// Disks is the stripe width (default 2).
	Disks int
	// DiskBytesEach is the per-device capacity (default 256 MiB).
	DiskBytesEach int64
}

func (o *Options) fill() {
	if o.Costs == nil {
		o.Costs = sim.DefaultCosts()
	}
	if o.CPUs <= 0 {
		o.CPUs = 24
	}
	if o.Disks <= 0 {
		o.Disks = 2
	}
	if o.DiskBytesEach <= 0 {
		o.DiskBytesEach = 256 << 20
	}
}

// NewSystem formats a fresh machine.
func NewSystem(opts Options) (*System, error) {
	opts.fill()
	arr := disk.NewArray(opts.Costs, opts.Disks, opts.DiskBytesEach)
	store, _, err := objstore.Format(opts.Costs, arr, 0)
	if err != nil {
		return nil, err
	}
	return &System{
		costs: opts.Costs,
		phys:  mem.New(opts.Costs),
		tlbs:  tlb.NewSystem(opts.Costs, opts.CPUs),
		arr:   arr,
		store: store,
	}, nil
}

// Recover builds a machine over an existing array (post-crash boot):
// the object store is recovered from disk and regions can be reopened
// at their original addresses.
func Recover(opts Options, arr *disk.Array, at time.Duration) (*System, time.Duration, error) {
	opts.fill()
	store, done, err := objstore.Open(opts.Costs, arr, at)
	if err != nil {
		return nil, at, err
	}
	return &System{
		costs: opts.Costs,
		phys:  mem.New(opts.Costs),
		tlbs:  tlb.NewSystem(opts.Costs, opts.CPUs),
		arr:   arr,
		store: store,
	}, done, nil
}

// Costs returns the cost model.
func (sys *System) Costs() *sim.CostModel { return sys.costs }

// Array returns the disk array (for stats and crash injection).
func (sys *System) Array() *disk.Array { return sys.arr }

// Store returns the object store.
func (sys *System) Store() *objstore.Store { return sys.store }

// TLBs returns the TLB system.
func (sys *System) TLBs() *tlb.System { return sys.tlbs }

// Phys returns physical memory.
func (sys *System) Phys() *mem.PhysMem { return sys.phys }

// RegionNames lists the regions present in the store.
func (sys *System) RegionNames() []string { return sys.store.Objects() }

// Process is one application process: an address space plus its view
// of the MemSnap regions. Multiprocess applications create several
// processes on one System and share regions (see OpenShared).
type Process struct {
	sys *System
	as  *vm.AddressSpace

	mu      sync.Mutex
	regions map[string]*Region
	// byMapping caches mapping→region resolution for the persist hot
	// path (the old path linearly scanned regions per dirty record).
	byMapping map[*vm.Mapping]*Region
}

// NewProcess creates a process on the system.
func (sys *System) NewProcess() *Process {
	return &Process{
		sys:       sys,
		as:        vm.NewAddressSpace(sys.costs, sys.phys, sys.tlbs),
		regions:   make(map[string]*Region),
		byMapping: make(map[*vm.Mapping]*Region),
	}
}

// AddressSpace exposes the process's address space.
func (p *Process) AddressSpace() *vm.AddressSpace { return p.as }

// Region is a persistent memory region: a tracked mapping backed by a
// COW object.
type Region struct {
	proc    *Process
	obj     *objstore.Object
	mapping *vm.Mapping
	addr    uint64
	length  int64

	// shared is the page array used when several processes map the
	// region (PostgreSQL-style shared memory).
	shared []*mem.Page
}

// Addr returns the region's fixed virtual address.
func (r *Region) Addr() uint64 { return r.addr }

// Len returns the region length in bytes.
func (r *Region) Len() int64 { return r.length }

// Name returns the region name.
func (r *Region) Name() string { return r.obj.Name() }

// Epoch returns the region's current durable epoch.
func (r *Region) Epoch() objstore.Epoch { return r.obj.Epoch() }

// Mapping exposes the underlying vm mapping.
func (r *Region) Mapping() *vm.Mapping { return r.mapping }

// Object exposes the backing store object.
func (r *Region) Object() *objstore.Object { return r.obj }

// regionAddr computes the fixed address for a region from its stable
// directory position.
func (sys *System) regionAddr(name string) uint64 {
	for i, n := range sys.store.Objects() {
		if n == name {
			return RegionBase + uint64(i)*RegionSlot
		}
	}
	return 0
}

// storeBacking pages region contents in from the object store,
// charging the read IO to the faulting thread's clock.
type storeBacking struct {
	obj *objstore.Object
}

// PageIn implements vm.Backing.
func (b storeBacking) PageIn(clk *sim.Clock, pageIdx uint64, dst []byte) {
	var at time.Duration
	if clk != nil {
		at = clk.Now()
	}
	done, err := b.obj.ReadBlock(at, int64(pageIdx), dst)
	if err != nil {
		//lint:allow hotalloc fatal-path formatting; a failed page-in aborts the simulation
		panic(fmt.Sprintf("core: page-in failed: %v", err))
	}
	if clk != nil {
		clk.AdvanceTo(done)
	}
}

// Open creates or opens a region of the given length (rounded up to a
// page) and maps it at its fixed address. The ctx clock is charged
// for the syscall and any store IO.
func (p *Process) Open(ctx *Context, name string, length int64) (*Region, error) {
	if length <= 0 {
		return nil, fmt.Errorf("core: region %q length %d", name, length)
	}
	if length > int64(RegionSlot) {
		return nil, fmt.Errorf("core: region %q exceeds slot size", name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.regions[name]; ok {
		return r, nil
	}
	ctx.th.Clock().Advance(p.sys.costs.SyscallEntry)

	obj, err := p.sys.store.OpenObject(name)
	if err != nil {
		var done time.Duration
		obj, done, err = p.sys.store.CreateObject(ctx.th.Clock().Now(), name, length)
		if err != nil {
			return nil, err
		}
		ctx.th.Clock().AdvanceTo(done)
	}

	pages := (uint64(length) + PageSize - 1) / PageSize
	addr := p.sys.regionAddr(name)
	if addr == 0 {
		return nil, fmt.Errorf("core: region %q has no address", name)
	}
	r := &Region{
		proc:   p,
		obj:    obj,
		addr:   addr,
		length: length,
		shared: make([]*mem.Page, pages),
	}
	r.mapping = &vm.Mapping{
		Name:        name,
		Start:       addr,
		Pages:       pages,
		Tracked:     true,
		Backing:     storeBacking{obj: obj},
		SharedPages: r.shared,
	}
	if err := p.as.Map(r.mapping); err != nil {
		return nil, err
	}
	p.regions[name] = r
	p.byMapping[r.mapping] = r
	return r, nil
}

// OpenShared maps a region already opened by another process into
// this process at the same address, sharing physical pages.
func (p *Process) OpenShared(ctx *Context, other *Region) (*Region, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.regions[other.Name()]; ok {
		return r, nil
	}
	ctx.th.Clock().Advance(p.sys.costs.SyscallEntry)
	r := &Region{
		proc:   p,
		obj:    other.obj,
		addr:   other.addr,
		length: other.length,
		shared: other.shared,
	}
	r.mapping = &vm.Mapping{
		Name:        other.Name(),
		Start:       other.addr,
		Pages:       other.mapping.Pages,
		Tracked:     true,
		Backing:     storeBacking{obj: other.obj},
		SharedPages: other.shared,
	}
	if err := p.as.Map(r.mapping); err != nil {
		return nil, err
	}
	p.regions[other.Name()] = r
	p.byMapping[r.mapping] = r
	return r, nil
}

// Region returns an opened region by name, or nil.
func (p *Process) Region(name string) *Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regions[name]
}

// sortRecordsByAddr orders dirty records for stable, mostly
// sequential store commits. slices.SortFunc does not allocate, unlike
// sort.Slice's interface boxing.
func sortRecordsByAddr(records []vm.DirtyRecord) {
	slices.SortFunc(records, func(a, b vm.DirtyRecord) int {
		switch {
		case a.Addr < b.Addr:
			return -1
		case a.Addr > b.Addr:
			return 1
		}
		return 0
	})
}
