package core

import (
	"fmt"
	"time"

	"memsnap/internal/mem"
	"memsnap/internal/objstore"
	"memsnap/internal/obs"
	"memsnap/internal/pool"
	"memsnap/internal/sim"
	"memsnap/internal/vm"
)

// Context is one application thread using MemSnap: it wraps a
// simulated vm thread and tracks outstanding asynchronous
// uCheckpoints.
type Context struct {
	proc *Process
	th   *vm.Thread

	pending []pendingCheckpoint

	// capture, when enabled, makes Persist retain a copy of every
	// committed page so replication can ship the uCheckpoint delta.
	capture  bool
	captured []CapturedCommit
	// prevStores retain the last captured content of each page (one
	// store per region) so the next capture of that page carries a
	// pre-image and a byte-range diff; preImageBudget bounds each
	// store (0: DefaultPreImagePages).
	prevStores     []*prevStore
	preImageBudget int
	// capturedSpare is the second half of the TakeCaptured double
	// buffer: captures fill one slice while the caller consumes the
	// other.
	capturedSpare []CapturedCommit

	// Scratch buffers reused across Persist calls. A Context belongs
	// to one thread, so they need no locking; together with the page
	// and slice pools they make the steady-state persist path
	// allocation-free.
	records  []vm.DirtyRecord
	vpns     []uint64
	snaps    [][]byte
	rws      []regionWrites
	holdFree [][]*mem.Page

	// LastBreakdown records the phase timing of the most recent
	// Persist call (Tables 5 and 10).
	LastBreakdown PersistBreakdown

	// StageTotals accumulates the msnap_persist phase timings across
	// all Persist/Wait calls on the context (exported via the shard
	// Prometheus exposition).
	StageTotals PersistStageTotals

	// Persists counts Persist calls; PersistLatency records their
	// caller-visible latency (sync: to durability; async: to return).
	Persists       int64
	PersistLatency *sim.LatencyRecorder

	// rec, when non-nil, receives lifecycle spans for every Persist and
	// Wait on this context (and fault instants from the vm thread),
	// stamped on the recTrack lane. A nil recorder costs one branch.
	rec      *obs.Recorder
	recTrack int32
}

// SetRecorder attaches (or with nil detaches) an observability
// recorder: Persist phase spans and the thread's fault instants are
// recorded on the given trace lane in virtual time.
func (ctx *Context) SetRecorder(r *obs.Recorder, track int32) {
	ctx.rec = r
	ctx.recTrack = track
	ctx.th.SetRecorder(r, track)
}

type pendingCheckpoint struct {
	region *Region
	epoch  objstore.Epoch
	done   time.Duration
	// hold carries the checkpoint-in-progress pages for the checkpoint
	// that completes last in its Persist call; nil elsewhere. Released
	// (flags cleared, buffer recycled) when the checkpoint is durable.
	hold []*mem.Page
}

// regionWrites groups one Persist call's blocks by region. Entries
// live in Context.rws and are reused call to call, preserving the
// blocks capacity; the per-call small-slice linear lookup replaces the
// old per-call map[*vm.Mapping]*regionWrites.
type regionWrites struct {
	mapping *vm.Mapping
	region  *Region
	blocks  []objstore.BlockWrite
	epoch   objstore.Epoch
	done    time.Duration
}

// PersistStageTotals is the cumulative msnap_persist breakdown:
// virtual time spent per phase, summed over every Persist (and Wait,
// for WaitIO) on a context.
type PersistStageTotals struct {
	ResetTracking  time.Duration
	InitiateWrites time.Duration
	WaitIO         time.Duration
}

// acquireHold returns a recycled checkpoint-hold buffer, or nil (the
// append in MarkCheckpointPages then allocates one that will be
// recycled on release).
func (ctx *Context) acquireHold() []*mem.Page {
	if n := len(ctx.holdFree); n > 0 {
		h := ctx.holdFree[n-1]
		ctx.holdFree = ctx.holdFree[:n-1]
		return h
	}
	return nil
}

// releaseHold clears the checkpoint-in-progress flags and recycles the
// buffer. Safe on nil.
func (ctx *Context) releaseHold(pages []*mem.Page) {
	if pages == nil {
		return
	}
	vm.ClearCheckpointPages(pages)
	clear(pages)
	ctx.holdFree = append(ctx.holdFree, pages[:0])
}

// CommittedPage is a copy of one page of a committed uCheckpoint,
// identified by its block index within the region. Data lives in a
// pooled page buffer: the holder releases it through
// CapturedCommit.Release or ReleasePages when done.
type CommittedPage struct {
	Index int64
	Data  []byte

	// Prev is the page's pre-image — its content as of the previous
	// captured commit — retained by the capturing context and attached
	// here at capture time (no re-faulting). Nil when no pre-image was
	// retained (first capture of the page, a fresh context, or budget
	// eviction): such a page ships whole.
	Prev []byte

	// Extents lists the modified byte ranges of Data relative to Prev,
	// computed at capture. Non-nil exactly when Prev is non-nil; empty
	// when the page was dirtied but is byte-identical.
	Extents []Extent

	// pg/prevPg are the pooled buffers backing Data and Prev; nil when
	// the slices are ordinary heap slices (snapshots, tests).
	pg     *pool.Page
	prevPg *pool.Page
}

// ReleasePre returns the page's pre-image buffer and extent list to
// their pools, keeping Data intact — for holders that consumed the
// diff (encoded it for the wire) and no longer need the pre-image.
func (cp *CommittedPage) ReleasePre() {
	cp.prevPg.Release()
	cp.prevPg, cp.Prev = nil, nil
	ReleaseExtents(cp.Extents)
	cp.Extents = nil
}

// CapturedCommit records one region's share of a Persist call: the
// epoch it committed and copies of exactly the pages it wrote. A
// captured commit is therefore the uCheckpoint's dirty-page delta —
// the unit a replication layer ships to a follower.
type CapturedCommit struct {
	Region *Region
	Epoch  objstore.Epoch
	Pages  []CommittedPage
}

// CaptureCommits enables or disables commit capture on the context.
// While enabled, every successful Persist appends one CapturedCommit
// per committed region (copying the page contents, charged to the
// context clock as memcpy); TakeCaptured drains them. Disabled by
// default.
func (ctx *Context) CaptureCommits(on bool) {
	ctx.capture = on
	if !on {
		for i := range ctx.captured {
			ctx.captured[i].Release()
		}
		ctx.captured = ctx.captured[:0]
		ctx.dropPreImages()
	}
}

// TakeCaptured returns the commits captured since the last call and
// clears the buffer. Commits appear in Persist order. Page data stays
// valid until the commit is Released, but the returned slice itself is
// reused for later captures once TakeCaptured is called again — the
// caller consumes (or copies) it before the next call.
func (ctx *Context) TakeCaptured() []CapturedCommit {
	out := ctx.captured
	ctx.captured = ctx.capturedSpare[:0]
	ctx.capturedSpare = out
	return out
}

// PersistBreakdown is the cost split of one Persist call.
type PersistBreakdown struct {
	// ResetTracking covers protection reset plus TLB invalidation
	// ("Resetting Tracking" / "Applying COW").
	ResetTracking time.Duration
	// InitiateWrites covers building and submitting the
	// scatter/gather IO.
	InitiateWrites time.Duration
	// WaitIO is the time to durability after submission (zero for
	// async callers until Wait).
	WaitIO time.Duration
	// Total is the caller-visible latency.
	Total time.Duration
	// Pages is the uCheckpoint size in pages.
	Pages int
}

// NewContext registers a new thread in the process, running on the
// given CPU.
func (p *Process) NewContext(cpu int) *Context {
	return &Context{
		proc:           p,
		th:             p.as.NewThread(nil, cpu),
		PersistLatency: sim.NewLatencyRecorder(),
	}
}

// Thread exposes the vm thread (for direct memory access).
func (ctx *Context) Thread() *vm.Thread { return ctx.th }

// Clock returns the context's virtual clock.
func (ctx *Context) Clock() *sim.Clock { return ctx.th.Clock() }

// Write stores data at a virtual address through the fault machinery.
func (ctx *Context) Write(addr uint64, data []byte) { ctx.th.Write(addr, data) }

// Read loads bytes from a virtual address.
func (ctx *Context) Read(addr uint64, buf []byte) { ctx.th.Read(addr, buf) }

// WriteAt stores data at an offset within a region.
func (ctx *Context) WriteAt(r *Region, off int64, data []byte) {
	ctx.th.Write(r.addr+uint64(off), data)
}

// ReadAt loads bytes from an offset within a region.
func (ctx *Context) ReadAt(r *Region, off int64, buf []byte) {
	ctx.th.Read(r.addr+uint64(off), buf)
}

// PageForWrite returns the live page slice for in-place mutation at a
// region offset, running the tracking fault machinery.
func (ctx *Context) PageForWrite(r *Region, off int64) []byte {
	return ctx.th.PageForWrite(r.addr + uint64(off))
}

// PageForRead returns the page slice for reading at a region offset.
func (ctx *Context) PageForRead(r *Region, off int64) []byte {
	return ctx.th.PageForRead(r.addr + uint64(off))
}

// DirtyPages returns the size of the calling thread's dirty set.
func (ctx *Context) DirtyPages() int { return ctx.th.DirtyLen() }

// Persist atomically persists the dirty set as a uCheckpoint.
//
// r selects the region whose pages are persisted; nil persists
// modifications across all regions (the paper's descriptor of -1).
// By default only the calling thread's dirty set is persisted;
// MSGlobal includes every thread's. MSSync (default) blocks until the
// data is durable; MSAsync returns after initiating the IO and the
// caller uses Wait.
//
// The returned epoch identifies the uCheckpoint for Wait. When r is
// nil and several regions were dirty, the epoch of the last committed
// region is returned and Wait(nil, epoch) waits for all of them.
//
// Capture mode moves pooled pages into the CapturedCommits it
// appends to ctx.captured; the commit holder releases them.
//
//memsnap:hotpath
//memsnap:owns
func (ctx *Context) Persist(r *Region, flags Flags) (objstore.Epoch, error) {
	if flags&MSSync != 0 && flags&MSAsync != 0 {
		//lint:allow hotalloc caller-bug error path, never taken in steady state
		return 0, fmt.Errorf("core: MSSync and MSAsync are mutually exclusive")
	}
	clk := ctx.th.Clock()
	start := clk.Now()
	proc := ctx.proc
	as := proc.as
	costs := proc.sys.costs

	clk.Advance(costs.SyscallEntry + costs.PersistFixed)
	ctx.sweepCompleted()

	var m *vm.Mapping
	if r != nil {
		m = r.mapping
	}

	// Gather the dirty set: the caller's, or everyone's with
	// MSGlobal. The records buffer is context scratch, reused call to
	// call.
	records := ctx.records[:0]
	if flags&MSGlobal != 0 {
		records = as.TakeDirtyAllInto(m, records)
	} else {
		records = ctx.th.TakeDirtyInto(m, records)
	}
	ctx.records = records
	if len(records) == 0 {
		ctx.Persists++
		lat := clk.Now() - start
		ctx.PersistLatency.Record(lat)
		ctx.LastBreakdown = PersistBreakdown{Total: lat}
		return 0, nil
	}
	sortRecordsByAddr(records)

	// Phase 1 — reset tracking: mark pages checkpoint-in-progress,
	// write-protect them through the trace buffer, shoot down stale
	// TLB entries.
	resetStart := clk.Now()
	hold := as.MarkCheckpointPages(records, ctx.acquireHold())
	vpns := as.ResetProtectionsTraceInto(clk, records, ctx.vpns[:0])
	ctx.vpns = vpns
	proc.sys.tlbs.Invalidate(clk, vpns)
	resetDur := clk.Now() - resetStart
	ctx.rec.Span(obs.CatPersist, obs.NameResetTracking, ctx.recTrack, resetStart, resetDur, int64(len(records)))

	// Phase 2 — initiate writes: snapshot page contents (aliases,
	// protected by the unified COW) and build per-region block lists.
	initStart := clk.Now()
	snaps := as.SnapshotPagesInto(records, ctx.snaps[:0])
	ctx.snaps = snaps
	clk.Advance(costs.PersistInitiateIO + costs.PersistPerPage*time.Duration(len(records)))

	// Group blocks by region. Persist calls touch at most a handful of
	// regions, so a linear scan over the used prefix of the reusable
	// ctx.rws entries beats the old per-call map.
	nrw := 0
	for i, rec := range records {
		var rw *regionWrites
		for j := 0; j < nrw; j++ {
			if ctx.rws[j].mapping == rec.Mapping {
				rw = &ctx.rws[j]
				break
			}
		}
		if rw == nil {
			reg := proc.regionByMapping(rec.Mapping)
			if reg == nil {
				ctx.releaseHold(hold)
				//lint:allow hotalloc caller-bug error path, never taken in steady state
				return 0, fmt.Errorf("core: dirty page in non-region mapping %q", rec.Mapping.Name)
			}
			if nrw < len(ctx.rws) {
				rw = &ctx.rws[nrw]
				rw.mapping, rw.region = rec.Mapping, reg
				rw.blocks = rw.blocks[:0]
			} else {
				ctx.rws = append(ctx.rws, regionWrites{mapping: rec.Mapping, region: reg})
				rw = &ctx.rws[nrw]
			}
			nrw++
		}
		rw.blocks = append(rw.blocks, objstore.BlockWrite{
			Index: int64((rec.Addr - rec.Mapping.Start) / PageSize),
			Data:  snaps[i],
		})
	}
	initDur := clk.Now() - initStart
	ctx.rec.Span(obs.CatPersist, obs.NameInitiateWrites, ctx.recTrack, initStart, initDur, int64(len(records)))

	// Phase 3 — commit each region's uCheckpoint. Different regions
	// commit independently (per-object epochs). The in-progress flags
	// cover pages across all committed regions, so the hold attaches
	// to the checkpoint that completes last (attachIdx).
	submitAt := clk.Now()
	var lastEpoch objstore.Epoch
	var lastDone time.Duration
	attachIdx := 0
	for i := 0; i < nrw; i++ {
		rw := &ctx.rws[i]
		epoch, done, err := rw.region.obj.Commit(submitAt, rw.blocks)
		if err != nil {
			ctx.releaseHold(hold)
			return 0, err
		}
		rw.epoch, rw.done = epoch, done
		lastEpoch = epoch
		if done > lastDone {
			lastDone = done
			attachIdx = i
		}
	}
	for i := 0; i < nrw; i++ {
		rw := &ctx.rws[i]
		pc := pendingCheckpoint{region: rw.region, epoch: rw.epoch, done: rw.done}
		if i == attachIdx {
			pc.hold = hold
		}
		ctx.pending = append(ctx.pending, pc)
	}

	// Capture the delta while the snapshot aliases are still pinned by
	// the in-progress flags: copies into pooled pages, so the captured
	// data stays valid after the checkpoint releases (until the holder
	// Releases the commit).
	if ctx.capture {
		diffBytes := 0
		for i := 0; i < nrw; i++ {
			rw := &ctx.rws[i]
			cc := CapturedCommit{Region: rw.region, Epoch: rw.epoch, Pages: GetCommittedPages(len(rw.blocks))}
			ps := ctx.prevStoreFor(rw.region)
			for _, b := range rw.blocks {
				pg := capturePagePool.Get()
				data := pg.Data[:len(b.Data)]
				copy(data, b.Data)
				cp := CommittedPage{Index: b.Index, Data: data, pg: pg}
				// Retain a second copy as the next capture's pre-image;
				// the previously retained copy (if any) becomes THIS
				// page's pre-image and is diffed on the spot.
				keep := capturePagePool.Get()
				copy(keep.Data[:len(b.Data)], b.Data)
				if prev := ps.swap(b.Index, keep); prev != nil {
					cp.Prev = prev.Data[:len(b.Data)]
					cp.prevPg = prev
					cp.Extents = DiffExtents(cp.Prev, data, GetExtents())
					diffBytes += len(data)
				}
				cc.Pages = append(cc.Pages, cp)
			}
			ctx.captured = append(ctx.captured, cc)
		}
		clk.Advance(costs.MemcpyCost(2*len(records)*PageSize) + costs.DiffCost(diffBytes))
	}

	ctx.Persists++
	breakdown := PersistBreakdown{
		ResetTracking:  resetDur,
		InitiateWrites: initDur,
		Pages:          len(records),
	}
	ctx.StageTotals.ResetTracking += resetDur
	ctx.StageTotals.InitiateWrites += initDur

	if flags&MSAsync != 0 {
		breakdown.Total = clk.Now() - start
		ctx.LastBreakdown = breakdown
		ctx.PersistLatency.Record(breakdown.Total)
		ctx.rec.Span(obs.CatPersist, obs.NamePersist, ctx.recTrack, start, breakdown.Total, int64(len(records)))
		return lastEpoch, nil
	}

	// Synchronous: wait for durability and release the in-progress
	// flags.
	clk.AdvanceTo(lastDone)
	breakdown.WaitIO = clk.Now() - submitAt
	breakdown.Total = clk.Now() - start
	ctx.StageTotals.WaitIO += breakdown.WaitIO
	ctx.LastBreakdown = breakdown
	ctx.PersistLatency.Record(breakdown.Total)
	ctx.rec.Span(obs.CatPersist, obs.NameWaitIO, ctx.recTrack, submitAt, breakdown.WaitIO, int64(len(records)))
	ctx.rec.Span(obs.CatPersist, obs.NamePersist, ctx.recTrack, start, breakdown.Total, int64(len(records)))
	ctx.sweepCompleted()
	return lastEpoch, nil
}

// regionByMapping resolves a mapping back to its region through the
// process's byMapping cache (maintained by Open/OpenShared).
func (p *Process) regionByMapping(m *vm.Mapping) *Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.byMapping[m]
}

// sweepCompleted releases checkpoint-in-progress flags for pending
// checkpoints that are durable by now.
func (ctx *Context) sweepCompleted() {
	now := ctx.th.Clock().Now()
	kept := ctx.pending[:0]
	for _, pc := range ctx.pending {
		if pc.done <= now {
			ctx.releaseHold(pc.hold)
		} else {
			kept = append(kept, pc)
		}
	}
	ctx.pending = kept
}

// Wait blocks the context until the given epoch of region r is
// durable (r nil: until every outstanding checkpoint up to the call
// is durable).
func (ctx *Context) Wait(r *Region, epoch objstore.Epoch) {
	clk := ctx.th.Clock()
	clk.Advance(ctx.proc.sys.costs.SyscallEntry)
	waitStart := clk.Now()
	kept := ctx.pending[:0]
	for _, pc := range ctx.pending {
		match := r == nil || (pc.region == r && pc.epoch <= epoch)
		if match {
			clk.AdvanceTo(pc.done)
			ctx.releaseHold(pc.hold)
		} else {
			kept = append(kept, pc)
		}
	}
	ctx.pending = kept
	waited := clk.Now() - waitStart
	ctx.StageTotals.WaitIO += waited
	if waited > 0 {
		ctx.rec.Span(obs.CatPersist, obs.NameWaitIO, ctx.recTrack, waitStart, waited, 0)
	}
}

// OutstandingCheckpoints reports how many async uCheckpoints have not
// been waited for.
func (ctx *Context) OutstandingCheckpoints() int { return len(ctx.pending) }
