package core

import (
	"fmt"
	"time"

	"memsnap/internal/objstore"
	"memsnap/internal/sim"
	"memsnap/internal/vm"
)

// Context is one application thread using MemSnap: it wraps a
// simulated vm thread and tracks outstanding asynchronous
// uCheckpoints.
type Context struct {
	proc *Process
	th   *vm.Thread

	pending []pendingCheckpoint

	// capture, when enabled, makes Persist retain a copy of every
	// committed page so replication can ship the uCheckpoint delta.
	capture  bool
	captured []CapturedCommit

	// LastBreakdown records the phase timing of the most recent
	// Persist call (Tables 5 and 10).
	LastBreakdown PersistBreakdown

	// Persists counts Persist calls; PersistLatency records their
	// caller-visible latency (sync: to durability; async: to return).
	Persists       int64
	PersistLatency *sim.LatencyRecorder
}

type pendingCheckpoint struct {
	region  *Region
	epoch   objstore.Epoch
	done    time.Duration
	release func()
}

// CommittedPage is a copy of one page of a committed uCheckpoint,
// identified by its block index within the region.
type CommittedPage struct {
	Index int64
	Data  []byte
}

// CapturedCommit records one region's share of a Persist call: the
// epoch it committed and copies of exactly the pages it wrote. A
// captured commit is therefore the uCheckpoint's dirty-page delta —
// the unit a replication layer ships to a follower.
type CapturedCommit struct {
	Region *Region
	Epoch  objstore.Epoch
	Pages  []CommittedPage
}

// CaptureCommits enables or disables commit capture on the context.
// While enabled, every successful Persist appends one CapturedCommit
// per committed region (copying the page contents, charged to the
// context clock as memcpy); TakeCaptured drains them. Disabled by
// default.
func (ctx *Context) CaptureCommits(on bool) {
	ctx.capture = on
	if !on {
		ctx.captured = nil
	}
}

// TakeCaptured returns the commits captured since the last call and
// clears the buffer. Commits appear in Persist order.
func (ctx *Context) TakeCaptured() []CapturedCommit {
	out := ctx.captured
	ctx.captured = nil
	return out
}

// PersistBreakdown is the cost split of one Persist call.
type PersistBreakdown struct {
	// ResetTracking covers protection reset plus TLB invalidation
	// ("Resetting Tracking" / "Applying COW").
	ResetTracking time.Duration
	// InitiateWrites covers building and submitting the
	// scatter/gather IO.
	InitiateWrites time.Duration
	// WaitIO is the time to durability after submission (zero for
	// async callers until Wait).
	WaitIO time.Duration
	// Total is the caller-visible latency.
	Total time.Duration
	// Pages is the uCheckpoint size in pages.
	Pages int
}

// NewContext registers a new thread in the process, running on the
// given CPU.
func (p *Process) NewContext(cpu int) *Context {
	return &Context{
		proc:           p,
		th:             p.as.NewThread(nil, cpu),
		PersistLatency: sim.NewLatencyRecorder(),
	}
}

// Thread exposes the vm thread (for direct memory access).
func (ctx *Context) Thread() *vm.Thread { return ctx.th }

// Clock returns the context's virtual clock.
func (ctx *Context) Clock() *sim.Clock { return ctx.th.Clock() }

// Write stores data at a virtual address through the fault machinery.
func (ctx *Context) Write(addr uint64, data []byte) { ctx.th.Write(addr, data) }

// Read loads bytes from a virtual address.
func (ctx *Context) Read(addr uint64, buf []byte) { ctx.th.Read(addr, buf) }

// WriteAt stores data at an offset within a region.
func (ctx *Context) WriteAt(r *Region, off int64, data []byte) {
	ctx.th.Write(r.addr+uint64(off), data)
}

// ReadAt loads bytes from an offset within a region.
func (ctx *Context) ReadAt(r *Region, off int64, buf []byte) {
	ctx.th.Read(r.addr+uint64(off), buf)
}

// PageForWrite returns the live page slice for in-place mutation at a
// region offset, running the tracking fault machinery.
func (ctx *Context) PageForWrite(r *Region, off int64) []byte {
	return ctx.th.PageForWrite(r.addr + uint64(off))
}

// PageForRead returns the page slice for reading at a region offset.
func (ctx *Context) PageForRead(r *Region, off int64) []byte {
	return ctx.th.PageForRead(r.addr + uint64(off))
}

// DirtyPages returns the size of the calling thread's dirty set.
func (ctx *Context) DirtyPages() int { return ctx.th.DirtyLen() }

// Persist atomically persists the dirty set as a uCheckpoint.
//
// r selects the region whose pages are persisted; nil persists
// modifications across all regions (the paper's descriptor of -1).
// By default only the calling thread's dirty set is persisted;
// MSGlobal includes every thread's. MSSync (default) blocks until the
// data is durable; MSAsync returns after initiating the IO and the
// caller uses Wait.
//
// The returned epoch identifies the uCheckpoint for Wait. When r is
// nil and several regions were dirty, the epoch of the last committed
// region is returned and Wait(nil, epoch) waits for all of them.
func (ctx *Context) Persist(r *Region, flags Flags) (objstore.Epoch, error) {
	if flags&MSSync != 0 && flags&MSAsync != 0 {
		return 0, fmt.Errorf("core: MSSync and MSAsync are mutually exclusive")
	}
	clk := ctx.th.Clock()
	start := clk.Now()
	proc := ctx.proc
	as := proc.as
	costs := proc.sys.costs

	clk.Advance(costs.SyscallEntry + costs.PersistFixed)
	ctx.sweepCompleted()

	var m *vm.Mapping
	if r != nil {
		m = r.mapping
	}

	// Gather the dirty set: the caller's, or everyone's with
	// MSGlobal.
	var records []vm.DirtyRecord
	if flags&MSGlobal != 0 {
		for _, th := range as.Threads() {
			records = append(records, th.TakeDirty(m)...)
		}
	} else {
		records = ctx.th.TakeDirty(m)
	}
	if len(records) == 0 {
		ctx.Persists++
		lat := clk.Now() - start
		ctx.PersistLatency.Record(lat)
		ctx.LastBreakdown = PersistBreakdown{Total: lat}
		return 0, nil
	}
	sortRecordsByAddr(records)

	// Phase 1 — reset tracking: mark pages checkpoint-in-progress,
	// write-protect them through the trace buffer, shoot down stale
	// TLB entries.
	resetStart := clk.Now()
	release := as.MarkCheckpointInProgress(records)
	vpns := as.ResetProtectionsTrace(clk, records)
	proc.sys.tlbs.Invalidate(clk, vpns)
	resetDur := clk.Now() - resetStart

	// Phase 2 — initiate writes: snapshot page contents (aliases,
	// protected by the unified COW) and build per-region block lists.
	initStart := clk.Now()
	snaps := as.SnapshotPages(records)
	clk.Advance(costs.PersistInitiateIO + costs.PersistPerPage*time.Duration(len(records)))

	type regionWrites struct {
		region *Region
		blocks []objstore.BlockWrite
	}
	byRegion := make(map[*vm.Mapping]*regionWrites)
	var order []*regionWrites
	for i, rec := range records {
		rw := byRegion[rec.Mapping]
		if rw == nil {
			reg := proc.regionByMapping(rec.Mapping)
			if reg == nil {
				return 0, fmt.Errorf("core: dirty page in non-region mapping %q", rec.Mapping.Name)
			}
			rw = &regionWrites{region: reg}
			byRegion[rec.Mapping] = rw
			order = append(order, rw)
		}
		rw.blocks = append(rw.blocks, objstore.BlockWrite{
			Index: int64((rec.Addr - rec.Mapping.Start) / PageSize),
			Data:  snaps[i],
		})
	}
	initDur := clk.Now() - initStart

	// Phase 3 — commit each region's uCheckpoint. Different regions
	// commit independently (per-object epochs).
	submitAt := clk.Now()
	var lastEpoch objstore.Epoch
	var lastDone time.Duration
	type committed struct {
		region *Region
		epoch  objstore.Epoch
		done   time.Duration
	}
	var commits []committed
	for _, rw := range order {
		epoch, done, err := rw.region.obj.Commit(submitAt, rw.blocks)
		if err != nil {
			release()
			return 0, err
		}
		lastEpoch = epoch
		if done > lastDone {
			lastDone = done
		}
		commits = append(commits, committed{region: rw.region, epoch: epoch, done: done})
	}
	// The in-progress flags cover pages across all committed regions,
	// so attach the release to the checkpoint that completes last.
	for _, c := range commits {
		rel := func() {}
		if c.done == lastDone {
			rel = release
			lastDone = -1 // attach exactly once
		}
		ctx.pending = append(ctx.pending, pendingCheckpoint{
			region:  c.region,
			epoch:   c.epoch,
			done:    c.done,
			release: rel,
		})
	}
	lastDone = 0
	for _, c := range commits {
		if c.done > lastDone {
			lastDone = c.done
		}
	}

	// Capture the delta while the snapshot aliases are still pinned by
	// the in-progress flags: copies, so the captured pages stay valid
	// after the checkpoint releases.
	if ctx.capture {
		for i, rw := range order {
			cc := CapturedCommit{Region: rw.region, Epoch: commits[i].epoch}
			for _, b := range rw.blocks {
				data := make([]byte, len(b.Data))
				copy(data, b.Data)
				cc.Pages = append(cc.Pages, CommittedPage{Index: b.Index, Data: data})
			}
			ctx.captured = append(ctx.captured, cc)
		}
		clk.Advance(costs.MemcpyCost(len(records) * PageSize))
	}

	ctx.Persists++
	breakdown := PersistBreakdown{
		ResetTracking:  resetDur,
		InitiateWrites: initDur,
		Pages:          len(records),
	}

	if flags&MSAsync != 0 {
		breakdown.Total = clk.Now() - start
		ctx.LastBreakdown = breakdown
		ctx.PersistLatency.Record(breakdown.Total)
		return lastEpoch, nil
	}

	// Synchronous: wait for durability and release the in-progress
	// flags.
	clk.AdvanceTo(lastDone)
	breakdown.WaitIO = clk.Now() - submitAt
	breakdown.Total = clk.Now() - start
	ctx.LastBreakdown = breakdown
	ctx.PersistLatency.Record(breakdown.Total)
	ctx.sweepCompleted()
	return lastEpoch, nil
}

// regionByMapping resolves a mapping back to its region.
func (p *Process) regionByMapping(m *vm.Mapping) *Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.regions {
		if r.mapping == m {
			return r
		}
	}
	return nil
}

// sweepCompleted releases checkpoint-in-progress flags for pending
// checkpoints that are durable by now.
func (ctx *Context) sweepCompleted() {
	now := ctx.th.Clock().Now()
	kept := ctx.pending[:0]
	for _, pc := range ctx.pending {
		if pc.done <= now {
			pc.release()
		} else {
			kept = append(kept, pc)
		}
	}
	ctx.pending = kept
}

// Wait blocks the context until the given epoch of region r is
// durable (r nil: until every outstanding checkpoint up to the call
// is durable).
func (ctx *Context) Wait(r *Region, epoch objstore.Epoch) {
	clk := ctx.th.Clock()
	clk.Advance(ctx.proc.sys.costs.SyscallEntry)
	kept := ctx.pending[:0]
	for _, pc := range ctx.pending {
		match := r == nil || (pc.region == r && pc.epoch <= epoch)
		if match {
			clk.AdvanceTo(pc.done)
			pc.release()
		} else {
			kept = append(kept, pc)
		}
	}
	ctx.pending = kept
}

// OutstandingCheckpoints reports how many async uCheckpoints have not
// been waited for.
func (ctx *Context) OutstandingCheckpoints() int { return len(ctx.pending) }
