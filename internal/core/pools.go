package core

import "memsnap/internal/pool"

// The capture pools are shared package-wide so every producer and
// consumer of captured commits (contexts, the shard service, the
// replication shipper and follower) recycles through the same pools.
var (
	// capturePagePool backs CommittedPage.Data buffers.
	capturePagePool = pool.NewPagePool(PageSize)
	// committedPagesPool recycles []CommittedPage slices.
	committedPagesPool = pool.NewSlicePool[CommittedPage]()
)

// CapturePoolStats snapshots the capture pools — the leak-check hook:
// after a balanced capture/release workload, InUse of both pools
// returns to its pre-workload value.
func CapturePoolStats() (pages, slices pool.Stats) {
	return capturePagePool.Stats(), committedPagesPool.Stats()
}

// GetCommittedPages returns a pooled zero-length []CommittedPage with
// at least capHint capacity intent (the hint is used only on a pool
// miss). Recycle with ReleasePages or RecyclePageSlice.
//
//memsnap:owns
func GetCommittedPages(capHint int) []CommittedPage {
	return committedPagesPool.Get(capHint)
}

// ReleasePages releases every page buffer in pages — Data, any
// retained pre-image, and any extent list — and recycles the slice
// itself. The caller must not use pages (or any Data/Prev it held)
// afterwards.
func ReleasePages(pages []CommittedPage) {
	for i := range pages {
		pages[i].pg.Release()
		pages[i].prevPg.Release()
		ReleaseExtents(pages[i].Extents)
		pages[i] = CommittedPage{}
	}
	committedPagesPool.Put(pages)
}

// RecyclePageSlice recycles the slice WITHOUT releasing the page
// buffers — for callers that moved the CommittedPage values (and with
// them page ownership) into another slice.
func RecyclePageSlice(pages []CommittedPage) {
	committedPagesPool.Put(pages)
}

// Release returns the commit's page buffers and slice to the capture
// pools. Safe to call once per captured commit; the commit must not be
// used afterwards.
func (cc *CapturedCommit) Release() {
	if cc.Pages != nil {
		ReleasePages(cc.Pages)
		cc.Pages = nil
	}
}

// MovePages transfers ownership of the commit's pages to the caller:
// it appends the CommittedPage values to dst, recycles the commit's
// own slice, and clears it. The caller becomes responsible for
// releasing the pages (ReleasePages on the destination, once full).
func (cc *CapturedCommit) MovePages(dst []CommittedPage) []CommittedPage {
	dst = append(dst, cc.Pages...)
	RecyclePageSlice(cc.Pages)
	cc.Pages = nil
	return dst
}
