package core

import (
	"bytes"
	"testing"
)

// applyExtents plays an extent list back onto a copy of prev and
// returns the result — the reference patcher for diff correctness.
func applyExtents(prev, cur []byte, ext []Extent) []byte {
	out := append([]byte(nil), prev...)
	for _, e := range ext {
		copy(out[e.Off:int(e.Off)+int(e.Len)], cur[e.Off:int(e.Off)+int(e.Len)])
	}
	return out
}

func TestDiffExtents(t *testing.T) {
	prev := make([]byte, PageSize)
	for i := range prev {
		prev[i] = byte(i * 7)
	}
	cases := []struct {
		name    string
		mutate  func(cur []byte)
		extents int // expected count; -1 skips the count check
	}{
		{"identical", func(cur []byte) {}, 0},
		{"first_byte", func(cur []byte) { cur[0] ^= 1 }, 1},
		{"last_byte", func(cur []byte) { cur[PageSize-1] ^= 1 }, 1},
		{"one_run", func(cur []byte) {
			for i := 100; i < 140; i++ {
				cur[i] = 0xEE
			}
		}, 1},
		{"merged_gap", func(cur []byte) {
			// Two runs separated by fewer than diffMergeGap equal bytes
			// coalesce into one extent.
			cur[10] ^= 1
			cur[10+diffMergeGap] ^= 1
		}, 1},
		{"split_gap", func(cur []byte) {
			// Separated by at least diffMergeGap: two extents.
			cur[10] ^= 1
			cur[11+diffMergeGap] ^= 1
		}, 2},
		{"collapse", func(cur []byte) {
			// More fragmented than maxDiffExtents: collapses to one
			// spanning extent.
			for i := 0; i < PageSize; i += 2 * diffMergeGap {
				cur[i] ^= 1
			}
		}, 1},
		{"whole_page", func(cur []byte) {
			for i := range cur {
				cur[i] ^= 0xFF
			}
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := append([]byte(nil), prev...)
			tc.mutate(cur)
			ext := DiffExtents(prev, cur, make([]Extent, 0, 4))
			if tc.extents >= 0 && len(ext) != tc.extents {
				t.Fatalf("got %d extents %v, want %d", len(ext), ext, tc.extents)
			}
			if got := applyExtents(prev, cur, ext); !bytes.Equal(got, cur) {
				t.Fatal("patching the extents onto prev does not reproduce cur")
			}
			for i := 1; i < len(ext); i++ {
				if int(ext[i-1].Off)+int(ext[i-1].Len) >= int(ext[i].Off) {
					t.Fatalf("extents overlap or touch out of order: %v", ext)
				}
			}
		})
	}
}

// TestCapturePreImages: with capture enabled, the second commit of a
// page carries the first commit's content as its pre-image plus the
// byte-range diff between them; the first commit of a page carries
// neither (full-page fallback).
func TestCapturePreImages(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.CaptureCommits(true)
	defer ctx.CaptureCommits(false)

	pg := ctx.PageForWrite(r, 0)
	pg[100] = 0xAA
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	caps := ctx.TakeCaptured()
	if len(caps) != 1 || len(caps[0].Pages) != 1 {
		t.Fatalf("first capture: %d commits", len(caps))
	}
	first := append([]byte(nil), caps[0].Pages[0].Data...)
	if caps[0].Pages[0].Prev != nil || caps[0].Pages[0].Extents != nil {
		t.Fatal("first capture of a page must have no pre-image")
	}
	caps[0].Release()

	pg = ctx.PageForWrite(r, 0)
	pg[100] = 0xBB
	pg[200] = 0xCC
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	caps = ctx.TakeCaptured()
	cp := &caps[0].Pages[0]
	if cp.Prev == nil {
		t.Fatal("second capture of the page carries no pre-image")
	}
	if !bytes.Equal(cp.Prev, first) {
		t.Fatal("pre-image is not the previously captured content")
	}
	if len(cp.Extents) != 2 {
		t.Fatalf("diff = %v, want two single-byte extents", cp.Extents)
	}
	if got := applyExtents(cp.Prev, cp.Data, cp.Extents); !bytes.Equal(got, cp.Data) {
		t.Fatal("capture-time diff does not patch pre-image to data")
	}
	caps[0].Release()
}

// preRound commits one round of page touches and counts how many of
// the captured pages carried a pre-image.
func preRound(t *testing.T, ctx *Context, r *Region, lo, hi int64) (withPre, withoutPre int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		pg := ctx.PageForWrite(r, i*PageSize)
		pg[0]++
	}
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	for _, cc := range ctx.TakeCaptured() {
		for j := range cc.Pages {
			if cc.Pages[j].Prev != nil {
				withPre++
			} else {
				withoutPre++
			}
		}
		cc.Release()
	}
	return withPre, withoutPre
}

// TestPreImageBudgetEviction: a pre-image store sized to the working
// set retains every page's pre-image, while a store bounded below it
// evicts FIFO — re-captures of evicted pages fall back to full-page
// (nil Prev) instead of growing without bound. A working set larger
// than the budget thrashes FIFO, so at most budget pages can carry a
// pre-image per round; the cost is full-page shipping, never
// correctness.
func TestPreImageBudgetEviction(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetPreImageBudget(8)
	ctx.CaptureCommits(true)
	if w, wo := preRound(t, ctx, r, 0, 8); w != 0 || wo != 8 {
		t.Fatalf("first round: %d/%d with/without pre-image, want 0/8", w, wo)
	}
	if w, wo := preRound(t, ctx, r, 0, 8); w != 8 || wo != 0 {
		t.Fatalf("within-budget re-capture: %d/%d with/without pre-image, want 8/0", w, wo)
	}
	ctx.CaptureCommits(false) // drop the store before shrinking the budget

	ctx2 := p.NewContext(1)
	r2, err := p.Open(ctx2, "data2", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx2.SetPreImageBudget(2)
	ctx2.CaptureCommits(true)
	defer ctx2.CaptureCommits(false)
	preRound(t, ctx2, r2, 0, 8)
	w, wo := preRound(t, ctx2, r2, 0, 8)
	if w+wo != 8 {
		t.Fatalf("second round captured %d pages, want 8", w+wo)
	}
	if w > 2 {
		t.Fatalf("second round: %d pages with pre-image under a 2-page budget, want at most 2", w)
	}
}

// TestCapturePreImagePoolBalance: the retained pre-image copies, the
// per-page extent lists and the capture buffers all return to their
// pools once captures are released and capture is disabled.
func TestCapturePreImagePoolBalance(t *testing.T) {
	pages0, slices0 := CapturePoolStats()
	ext0 := CaptureExtentStats()
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.CaptureCommits(true)
	for round := 0; round < 30; round++ {
		for i := int64(0); i < 6; i++ {
			pg := ctx.PageForWrite(r, i*PageSize)
			pg[round%PageSize]++
		}
		if _, err := ctx.Persist(r, MSSync); err != nil {
			t.Fatal(err)
		}
		for _, cc := range ctx.TakeCaptured() {
			cc.Release()
		}
	}
	// Disabling capture drops the retained pre-image store.
	ctx.CaptureCommits(false)
	pages1, slices1 := CapturePoolStats()
	ext1 := CaptureExtentStats()
	if pages1.InUse() != pages0.InUse() {
		t.Fatalf("capture page pool leaked (pre-images?): in-use %d -> %d", pages0.InUse(), pages1.InUse())
	}
	if slices1.InUse() != slices0.InUse() {
		t.Fatalf("captured-pages slice pool leaked: in-use %d -> %d", slices0.InUse(), slices1.InUse())
	}
	if ext1.InUse() != ext0.InUse() {
		t.Fatalf("extent pool leaked: in-use %d -> %d", ext0.InUse(), ext1.InUse())
	}
	if ext1.Gets == ext0.Gets {
		t.Fatal("extent pool was never exercised")
	}
}

// TestCaptureDiffSteadyStateZeroAlloc extends the zero-alloc ceiling
// to the diffing capture path: pre-image retention, double page copy
// and extent diffing must all run out of pools.
func TestCaptureDiffSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.CaptureCommits(true)
	defer ctx.CaptureCommits(false)
	n := byte(0)
	op := func() {
		n++
		for i := int64(0); i < 8; i++ {
			pg := ctx.PageForWrite(r, i*PageSize)
			pg[int(n)%32*100]++
		}
		if _, err := ctx.Persist(r, MSSync); err != nil {
			t.Fatal(err)
		}
		for _, cc := range ctx.TakeCaptured() {
			cc.Release()
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	if got := testing.AllocsPerRun(200, op); got > 0 {
		t.Fatalf("steady-state diffing capture allocates %.1f times per call, want 0", got)
	}
}
