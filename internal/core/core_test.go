package core

import (
	"bytes"
	"testing"
	"time"

	"memsnap/internal/sim"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenPersistRecover(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.WriteAt(r, 0, []byte("hello"))
	ctx.WriteAt(r, 123456, []byte("world"))
	epoch, err := ctx.Persist(r, MSSync)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("persist returned zero epoch for non-empty dirty set")
	}

	// Crash: power cut strictly after durability, then reboot.
	sys.Array().CutPower(ctx.Clock().Now(), sim.NewRNG(1))
	sys2, at, err := Recover(Options{}, sys.Array(), ctx.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	p2 := sys2.NewProcess()
	ctx2 := p2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	r2, err := p2.Open(ctx2, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Addr() != r.Addr() {
		t.Fatalf("region address changed across reboot: %#x vs %#x", r2.Addr(), r.Addr())
	}
	buf := make([]byte, 5)
	ctx2.ReadAt(r2, 0, buf)
	if string(buf) != "hello" {
		t.Fatalf("block 0 = %q", buf)
	}
	ctx2.ReadAt(r2, 123456, buf)
	if string(buf) != "world" {
		t.Fatalf("offset 123456 = %q", buf)
	}
}

func TestUnpersistedChangesLostOnCrash(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	ctx.WriteAt(r, 0, []byte("durable"))
	ctx.Persist(r, MSSync)
	ctx.WriteAt(r, 0, []byte("LOSTLOS"))
	// no persist — crash
	sys.Array().CutPower(ctx.Clock().Now(), sim.NewRNG(2))
	sys2, at, _ := Recover(Options{}, sys.Array(), ctx.Clock().Now())
	p2 := sys2.NewProcess()
	ctx2 := p2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	r2, _ := p2.Open(ctx2, "data", 1<<20)
	buf := make([]byte, 7)
	ctx2.ReadAt(r2, 0, buf)
	if string(buf) != "durable" {
		t.Fatalf("recovered %q, want pre-crash committed state", buf)
	}
}

func TestPerThreadDirtySetIsolation(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctxA := p.NewContext(0)
	ctxB := p.NewContext(1)
	r, _ := p.Open(ctxA, "data", 1<<20)

	ctxA.WriteAt(r, 0, []byte("AAAA"))
	ctxB.WriteAt(r, 8192, []byte("BBBB"))

	// A persists: only A's page is included; B's stays dirty.
	if _, err := ctxA.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	if ctxB.DirtyPages() != 1 {
		t.Fatalf("B's dirty set disturbed: %d", ctxB.DirtyPages())
	}

	// Crash now: A's data durable, B's lost.
	sys.Array().CutPower(ctxA.Clock().Now(), sim.NewRNG(3))
	sys2, at, _ := Recover(Options{}, sys.Array(), ctxA.Clock().Now())
	p2 := sys2.NewProcess()
	ctx2 := p2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	r2, _ := p2.Open(ctx2, "data", 1<<20)
	buf := make([]byte, 4)
	ctx2.ReadAt(r2, 0, buf)
	if string(buf) != "AAAA" {
		t.Fatalf("A's committed data lost: %q", buf)
	}
	ctx2.ReadAt(r2, 8192, buf)
	if string(buf) == "BBBB" {
		t.Fatal("B's uncommitted data persisted by A's uCheckpoint")
	}
}

func TestMSGlobalPersistsAllThreads(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctxA := p.NewContext(0)
	ctxB := p.NewContext(1)
	r, _ := p.Open(ctxA, "data", 1<<20)
	ctxA.WriteAt(r, 0, []byte("AAAA"))
	ctxB.WriteAt(r, 8192, []byte("BBBB"))
	if _, err := ctxA.Persist(r, MSSync|MSGlobal); err != nil {
		t.Fatal(err)
	}
	if ctxB.DirtyPages() != 0 {
		t.Fatal("MSGlobal did not drain other thread's dirty set")
	}
	if ctxA.LastBreakdown.Pages != 2 {
		t.Fatalf("global checkpoint pages = %d", ctxA.LastBreakdown.Pages)
	}
}

func TestAsyncPersistAndWait(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	ctx.WriteAt(r, 0, bytes.Repeat([]byte{1}, 64<<10))

	epoch, err := ctx.Persist(r, MSAsync)
	if err != nil {
		t.Fatal(err)
	}
	asyncLat := ctx.LastBreakdown.Total
	if ctx.OutstandingCheckpoints() == 0 {
		t.Fatal("async persist left nothing outstanding")
	}
	before := ctx.Clock().Now()
	ctx.Wait(r, epoch)
	if ctx.Clock().Now() <= before {
		t.Fatal("Wait did not advance to IO completion")
	}
	if ctx.OutstandingCheckpoints() != 0 {
		t.Fatal("Wait left checkpoints outstanding")
	}

	// Async return latency must be far below sync latency (Table 6:
	// 6 us vs 50 us at 64 KiB).
	ctx.WriteAt(r, 0, bytes.Repeat([]byte{2}, 64<<10))
	ctx.Persist(r, MSSync)
	syncLat := ctx.LastBreakdown.Total
	if asyncLat*3 > syncLat {
		t.Fatalf("async %v not clearly cheaper than sync %v", asyncLat, syncLat)
	}
}

func TestSyncAsyncConflict(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	if _, err := ctx.Persist(nil, MSSync|MSAsync); err == nil {
		t.Fatal("conflicting flags accepted")
	}
}

func TestEmptyPersist(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	epoch, err := ctx.Persist(r, MSSync)
	if err != nil || epoch != 0 {
		t.Fatalf("empty persist: epoch=%d err=%v", epoch, err)
	}
}

func TestPersistAllRegions(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	ra, _ := p.Open(ctx, "a", 1<<20)
	rb, _ := p.Open(ctx, "b", 1<<20)
	ctx.WriteAt(ra, 0, []byte("aa"))
	ctx.WriteAt(rb, 0, []byte("bb"))
	if _, err := ctx.Persist(nil, MSSync); err != nil {
		t.Fatal(err)
	}
	if ctx.DirtyPages() != 0 {
		t.Fatal("persist(nil) left dirty pages")
	}
	if ra.Epoch() != 1 || rb.Epoch() != 1 {
		t.Fatalf("epochs: a=%d b=%d", ra.Epoch(), rb.Epoch())
	}
}

func TestPersistRegionFilter(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	ra, _ := p.Open(ctx, "a", 1<<20)
	rb, _ := p.Open(ctx, "b", 1<<20)
	ctx.WriteAt(ra, 0, []byte("aa"))
	ctx.WriteAt(rb, 0, []byte("bb"))
	ctx.Persist(ra, MSSync)
	if ctx.DirtyPages() != 1 {
		t.Fatalf("region filter broke: %d dirty left", ctx.DirtyPages())
	}
	if rb.Epoch() != 0 {
		t.Fatal("persist(a) committed b")
	}
}

func TestPersistBreakdownTable5Shape(t *testing.T) {
	// 64 KiB dirty set: reset tracking a few us, total within ~2x of
	// direct disk IO (Table 5: 5.1 / 6.5 / 39.7 / 51.4 us).
	sys := newSys(t)
	costs := sys.Costs()
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	ctx.WriteAt(r, 0, bytes.Repeat([]byte{7}, 64<<10))
	ctx.Persist(r, MSSync)
	b := ctx.LastBreakdown
	if b.Pages != 16 {
		t.Fatalf("pages = %d", b.Pages)
	}
	if b.ResetTracking <= 0 || b.ResetTracking > 12*time.Microsecond {
		t.Fatalf("reset tracking = %v, want a few us", b.ResetTracking)
	}
	if b.WaitIO < costs.IOCost(64<<10)/2 {
		t.Fatalf("wait IO = %v implausibly small", b.WaitIO)
	}
	if b.Total > 3*costs.IOCost(64<<10) {
		t.Fatalf("total %v more than 3x direct IO %v", b.Total, costs.IOCost(64<<10))
	}
	if got := b.ResetTracking + b.InitiateWrites + b.WaitIO; got > b.Total {
		t.Fatalf("phases %v exceed total %v", got, b.Total)
	}
}

func TestRepeatedPersistRetracks(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	for i := 0; i < 10; i++ {
		ctx.WriteAt(r, 0, []byte{byte(i)})
		if ctx.DirtyPages() != 1 {
			t.Fatalf("iter %d: dirty=%d", i, ctx.DirtyPages())
		}
		if _, err := ctx.Persist(r, MSSync); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Epoch(); got != 10 {
		t.Fatalf("epoch = %d", got)
	}
}

func TestTornUCheckpointAtomicity(t *testing.T) {
	// A multi-page uCheckpoint cut mid-IO must be all-or-nothing
	// after recovery.
	for seed := uint64(0); seed < 15; seed++ {
		sys, _ := NewSystem(Options{})
		p := sys.NewProcess()
		ctx := p.NewContext(0)
		r, _ := p.Open(ctx, "data", 1<<20)
		ctx.WriteAt(r, 0, bytes.Repeat([]byte{0x0A}, 32<<10))
		ctx.Persist(r, MSSync)

		start := ctx.Clock().Now()
		ctx.WriteAt(r, 0, bytes.Repeat([]byte{0x0B}, 32<<10))
		ctx.Persist(r, MSSync)
		end := ctx.Clock().Now()

		rng := sim.NewRNG(seed + 77)
		cut := start + time.Duration(rng.Int63n(int64(end-start)+1))
		sys.Array().CutPower(cut, rng)

		sys2, at, err := Recover(Options{}, sys.Array(), end)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p2 := sys2.NewProcess()
		ctx2 := p2.NewContext(0)
		ctx2.Clock().AdvanceTo(at)
		r2, _ := p2.Open(ctx2, "data", 1<<20)
		buf := make([]byte, 32<<10)
		ctx2.ReadAt(r2, 0, buf)
		first := buf[0]
		if first != 0x0A && first != 0x0B {
			t.Fatalf("seed %d: garbage byte %#x", seed, first)
		}
		for i, b := range buf {
			if b != first {
				t.Fatalf("seed %d: uCheckpoint torn at byte %d (%#x vs %#x)", seed, i, b, first)
			}
		}
	}
}

func TestConcurrentWriterDuringPersistIsolated(t *testing.T) {
	// Writes racing an in-flight async uCheckpoint must not leak into
	// it (unified COW).
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	ctx.WriteAt(r, 0, []byte("SNAPSHOT"))
	epoch, _ := ctx.Persist(r, MSAsync)

	// Mutate while the IO is in flight.
	ctx.WriteAt(r, 0, []byte("POSTDATA"))
	if sys.NewProcess(); false {
		_ = epoch
	}
	ctx.Wait(r, epoch)

	// Cut power right at the durability point of the first
	// checkpoint: the second write was never persisted.
	sys.Array().CutPower(ctx.Clock().Now(), sim.NewRNG(5))
	sys2, at, _ := Recover(Options{}, sys.Array(), ctx.Clock().Now())
	p2 := sys2.NewProcess()
	ctx2 := p2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	r2, _ := p2.Open(ctx2, "data", 1<<20)
	buf := make([]byte, 8)
	ctx2.ReadAt(r2, 0, buf)
	if string(buf) != "SNAPSHOT" {
		t.Fatalf("in-flight checkpoint captured racing write: %q", buf)
	}
	// And the COW fault fired.
	if p.AddressSpace().Stats().COWFaults == 0 {
		t.Fatal("no COW fault for write during in-flight checkpoint")
	}
}

func TestRegionSlotAddressesDistinct(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	ra, _ := p.Open(ctx, "a", 1<<20)
	rb, _ := p.Open(ctx, "b", 1<<20)
	if ra.Addr() == rb.Addr() {
		t.Fatal("regions share an address")
	}
	if ra.Addr() < RegionBase || rb.Addr() < RegionBase {
		t.Fatal("regions below RegionBase")
	}
}

func TestOpenExistingIdempotent(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r1, _ := p.Open(ctx, "a", 1<<20)
	r2, err := p.Open(ctx, "a", 1<<20)
	if err != nil || r1 != r2 {
		t.Fatal("re-open returned a different region")
	}
}

func TestOpenBadLength(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	if _, err := p.Open(ctx, "bad", 0); err == nil {
		t.Fatal("zero-length region accepted")
	}
	if _, err := p.Open(ctx, "huge", int64(RegionSlot)+1); err == nil {
		t.Fatal("oversized region accepted")
	}
}

func TestSharedRegionTwoProcesses(t *testing.T) {
	sys := newSys(t)
	p1 := sys.NewProcess()
	ctx1 := p1.NewContext(0)
	r1, _ := p1.Open(ctx1, "shm", 1<<20)

	p2 := sys.NewProcess()
	ctx2 := p2.NewContext(1)
	r2, err := p2.OpenShared(ctx2, r1)
	if err != nil {
		t.Fatal(err)
	}
	ctx1.WriteAt(r1, 0, []byte("cross"))
	buf := make([]byte, 5)
	ctx2.ReadAt(r2, 0, buf)
	if string(buf) != "cross" {
		t.Fatalf("shared region not shared: %q", buf)
	}
	// Persist from process 1, then write from process 2 must fault
	// (its PTE was reset via the reverse mapping) and be tracked.
	ctx2.ReadAt(r2, 0, buf) // ensure p2 has a PTE
	ctx2.WriteAt(r2, 0, []byte("p2own"))
	ctx1.Persist(r1, MSSync|MSGlobal)
	before := p2.AddressSpace().Stats().TrackingFaults
	ctx2.WriteAt(r2, 0, []byte("again"))
	if p2.AddressSpace().Stats().TrackingFaults == before {
		t.Fatal("write in process 2 after persist did not re-fault")
	}
}

func TestPersistLatencyRecorded(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "data", 1<<20)
	for i := 0; i < 5; i++ {
		ctx.WriteAt(r, int64(i)*PageSize, []byte{1})
		ctx.Persist(r, MSSync)
	}
	if ctx.Persists != 5 || ctx.PersistLatency.Count() != 5 {
		t.Fatalf("persists=%d recorded=%d", ctx.Persists, ctx.PersistLatency.Count())
	}
}
