package core

import (
	"bytes"
	"testing"
)

// TestCaptureCommits exercises the replication capture hook: disabled
// by default, a faithful per-commit page copy when enabled, drained by
// TakeCaptured, cleared when disabled.
func TestCaptureCommits(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Capture is off by default: nothing accumulates.
	ctx.WriteAt(r, 0, []byte("aa"))
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	if got := ctx.TakeCaptured(); len(got) != 0 {
		t.Fatalf("captured %d commits with capture disabled", len(got))
	}

	ctx.CaptureCommits(true)
	ctx.WriteAt(r, 0, []byte("bb"))
	ctx.WriteAt(r, 3*PageSize+5, []byte("cc"))
	epoch, err := ctx.Persist(r, MSSync)
	if err != nil {
		t.Fatal(err)
	}
	caps := ctx.TakeCaptured()
	if len(caps) != 1 {
		t.Fatalf("captured %d commits, want 1", len(caps))
	}
	c := caps[0]
	if c.Region != r || c.Epoch != epoch {
		t.Fatalf("captured commit region/epoch mismatch: epoch %d want %d", c.Epoch, epoch)
	}
	if len(c.Pages) != 2 {
		t.Fatalf("captured %d pages, want 2 (pages 0 and 3)", len(c.Pages))
	}
	byIndex := map[int64][]byte{}
	for _, pg := range c.Pages {
		if len(pg.Data) != PageSize {
			t.Fatalf("captured page %d has %d bytes", pg.Index, len(pg.Data))
		}
		byIndex[pg.Index] = pg.Data
	}
	if !bytes.Equal(byIndex[0][:2], []byte("bb")) {
		t.Fatalf("page 0 capture = %q", byIndex[0][:2])
	}
	if !bytes.Equal(byIndex[3][5:7], []byte("cc")) {
		t.Fatalf("page 3 capture = %q", byIndex[3][5:7])
	}

	// The capture is a copy: later region writes must not alias it.
	ctx.WriteAt(r, 0, []byte("zz"))
	if !bytes.Equal(byIndex[0][:2], []byte("bb")) {
		t.Fatal("captured page aliases live region memory")
	}

	// TakeCaptured drains.
	if got := ctx.TakeCaptured(); len(got) != 0 {
		t.Fatalf("second TakeCaptured returned %d commits", len(got))
	}

	// Each commit is captured separately while enabled.
	ctx.WriteAt(r, PageSize, []byte("dd"))
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	ctx.WriteAt(r, 2*PageSize, []byte("ee"))
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	if got := ctx.TakeCaptured(); len(got) != 2 {
		t.Fatalf("captured %d commits, want 2", len(got))
	}

	// Disabling clears anything buffered.
	ctx.WriteAt(r, 0, []byte("ff"))
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatal(err)
	}
	ctx.CaptureCommits(false)
	if got := ctx.TakeCaptured(); len(got) != 0 {
		t.Fatalf("CaptureCommits(false) left %d buffered commits", len(got))
	}
}
