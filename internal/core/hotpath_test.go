package core

import (
	"sync"
	"testing"

	"memsnap/internal/vm"
)

// TestPersistErrorPathReleasesHold is the regression test for the
// checkpoint-in-progress leak: when Persist fails because a dirty page
// belongs to a mapping that is not a region, the hold taken by
// MarkCheckpointPages must be released (flags cleared, buffer
// recycled), not abandoned.
func TestPersistErrorPathReleasesHold(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// A tracked mapping outside any region: its dirty pages cannot be
	// committed anywhere.
	foreign := &vm.Mapping{Name: "foreign", Start: 1 << 40, Pages: 4, Tracked: true}
	if err := p.as.Map(foreign); err != nil {
		t.Fatal(err)
	}
	ctx.th.Write(foreign.Start, []byte("x"))
	ctx.WriteAt(r, 0, []byte("y"))

	if _, err := ctx.Persist(nil, MSSync); err == nil {
		t.Fatal("Persist succeeded with a dirty non-region mapping")
	}
	if got := len(ctx.pending); got != 0 {
		t.Fatalf("failed Persist left %d pending checkpoints", got)
	}
	if got := len(ctx.holdFree); got != 1 {
		t.Fatalf("failed Persist recycled %d hold buffers, want 1 (hold leaked)", got)
	}

	// The context still persists normally afterwards, and the recycled
	// hold buffer is reused rather than grown.
	ctx.WriteAt(r, 0, []byte("z"))
	if _, err := ctx.Persist(r, MSSync); err != nil {
		t.Fatalf("Persist after recovered error: %v", err)
	}
	if got := len(ctx.holdFree); got != 1 {
		t.Fatalf("hold free list = %d buffers after clean persist, want 1", got)
	}
}

// TestPersistSteadyStateZeroAlloc pins the tentpole criterion: once
// pools and scratch buffers are warm, a Persist of a fixed dirty set
// performs zero heap allocations per call.
func TestPersistSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	op := func() {
		for i := int64(0); i < 8; i++ {
			pg := ctx.PageForWrite(r, i*PageSize)
			pg[0]++
		}
		if _, err := ctx.Persist(r, MSSync); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		op() // warm pools, map buckets, scratch capacities
	}
	if got := testing.AllocsPerRun(200, op); got > 0 {
		t.Fatalf("steady-state Persist allocates %.1f times per call, want 0", got)
	}
}

// TestCapturePoolNoLeak drives the capture pipeline end to end and
// checks every pooled page and slice returns: the pool's in-use count
// is unchanged after all captured commits are released.
func TestCapturePoolNoLeak(t *testing.T) {
	pages0, slices0 := CapturePoolStats()
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, err := p.Open(ctx, "data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.CaptureCommits(true)
	for round := 0; round < 50; round++ {
		for i := int64(0); i < 8; i++ {
			pg := ctx.PageForWrite(r, i*PageSize)
			pg[0]++
		}
		if _, err := ctx.Persist(r, MSSync); err != nil {
			t.Fatal(err)
		}
		for _, cc := range ctx.TakeCaptured() {
			if len(cc.Pages) != 8 {
				t.Fatalf("captured %d pages, want 8", len(cc.Pages))
			}
			cc.Release()
		}
	}
	// Drain the double buffer's other half too.
	ctx.CaptureCommits(false)
	ctx.Wait(nil, 0)
	pages1, slices1 := CapturePoolStats()
	if pages1.InUse() != pages0.InUse() {
		t.Fatalf("capture page pool leaked: in-use %d -> %d", pages0.InUse(), pages1.InUse())
	}
	if slices1.InUse() != slices0.InUse() {
		t.Fatalf("captured-pages slice pool leaked: in-use %d -> %d", slices0.InUse(), slices1.InUse())
	}
	if pages1.Gets == pages0.Gets {
		t.Fatal("capture page pool was never exercised")
	}
}

// TestPersistGlobalConcurrentStress hammers MSGlobal persists from a
// dedicated context while other contexts dirty and persist their own
// regions — the interleaving the scratch-buffer reuse and hold
// machinery must survive. Run with -race in CI.
func TestPersistGlobalConcurrentStress(t *testing.T) {
	const writers = 3
	sys, err := NewSystem(Options{CPUs: writers + 1})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess()
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)

	regions := make([]*Region, writers)
	ctxs := make([]*Context, writers)
	for w := 0; w < writers; w++ {
		ctxs[w] = p.NewContext(w)
		r, err := p.Open(ctxs[w], "data"+string(rune('0'+w)), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		regions[w] = r
	}
	gctx := p.NewContext(writers)

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, r := ctxs[w], regions[w]
			for i := 0; i < 150; i++ {
				for pg := int64(0); pg < 4; pg++ {
					b := ctx.PageForWrite(r, pg*PageSize)
					b[i%PageSize]++
				}
				flags := MSSync
				if i%3 == 0 {
					flags = MSAsync
				}
				if _, err := ctx.Persist(r, flags); err != nil {
					errs <- err
					return
				}
			}
			ctx.Wait(nil, 0)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := gctx.Persist(nil, MSGlobal|MSSync); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := gctx.OutstandingCheckpoints(); n != 0 {
		t.Fatalf("global context left %d outstanding checkpoints", n)
	}
}
