package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"memsnap/internal/sim"
)

// TestAsyncOverlap verifies that two async uCheckpoints of different
// regions overlap on the device instead of serializing.
func TestAsyncOverlap(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	ra, _ := p.Open(ctx, "a", 1<<20)
	rb, _ := p.Open(ctx, "b", 1<<20)

	payload := bytes.Repeat([]byte{1}, 256<<10)
	ctx.WriteAt(ra, 0, payload)
	ctx.WriteAt(rb, 0, payload)

	// Sequential sync persists.
	start := ctx.Clock().Now()
	ctx.Persist(ra, MSSync)
	ctx.Persist(rb, MSSync)
	serial := ctx.Clock().Now() - start

	// Async both, then wait: the IOs share submission time.
	ctx.WriteAt(ra, 0, payload)
	ctx.WriteAt(rb, 0, payload)
	start = ctx.Clock().Now()
	ea, _ := ctx.Persist(ra, MSAsync)
	eb, _ := ctx.Persist(rb, MSAsync)
	ctx.Wait(ra, ea)
	ctx.Wait(rb, eb)
	overlapped := ctx.Clock().Now() - start

	if overlapped >= serial {
		t.Fatalf("async persists (%v) did not overlap vs serial (%v)", overlapped, serial)
	}
}

// TestWaitIdempotent ensures double Wait and Wait-without-pending are
// harmless.
func TestWaitIdempotent(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "a", 1<<20)
	ctx.WriteAt(r, 0, []byte{1})
	epoch, _ := ctx.Persist(r, MSAsync)
	ctx.Wait(r, epoch)
	before := ctx.Clock().Now()
	ctx.Wait(r, epoch)
	ctx.Wait(nil, 0)
	// Only syscall costs, no IO waits.
	if ctx.Clock().Now()-before > 5*time.Microsecond {
		t.Fatalf("idle Wait advanced %v", ctx.Clock().Now()-before)
	}
}

// TestGlobalPersistFromEitherThread checks that MS_GLOBAL drains dirty
// sets regardless of which thread calls it.
func TestGlobalPersistFromEitherThread(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	a := p.NewContext(0)
	b := p.NewContext(1)
	r, _ := p.Open(a, "x", 1<<20)
	a.WriteAt(r, 0, []byte{1})
	b.WriteAt(r, 8192, []byte{2})
	if _, err := b.Persist(nil, MSSync|MSGlobal); err != nil {
		t.Fatal(err)
	}
	if a.DirtyPages() != 0 || b.DirtyPages() != 0 {
		t.Fatal("global persist from thread B left dirty pages")
	}
}

// TestEpochMonotonicProperty: persists always return strictly
// increasing epochs for a region.
func TestEpochMonotonicProperty(t *testing.T) {
	f := func(writes []uint8) bool {
		if len(writes) == 0 {
			return true
		}
		sys, err := NewSystem(Options{})
		if err != nil {
			return false
		}
		p := sys.NewProcess()
		ctx := p.NewContext(0)
		r, err := p.Open(ctx, "m", 1<<20)
		if err != nil {
			return false
		}
		var last uint64
		for _, w := range writes {
			ctx.WriteAt(r, int64(w%200)*PageSize, []byte{w})
			epoch, err := ctx.Persist(r, MSSync)
			if err != nil || uint64(epoch) <= last {
				return false
			}
			last = uint64(epoch)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverWithManyRegions checks address stability with several
// regions created in different orders.
func TestRecoverWithManyRegions(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	names := []string{"zeta", "alpha", "omega", "beta"}
	addrs := map[string]uint64{}
	for i, name := range names {
		r, err := p.Open(ctx, name, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		addrs[name] = r.Addr()
		ctx.WriteAt(r, 0, []byte{byte(i + 1)})
		ctx.Persist(r, MSSync)
	}

	sys.Array().CutPower(ctx.Clock().Now(), sim.NewRNG(3))
	sys2, at, err := Recover(Options{}, sys.Array(), ctx.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	p2 := sys2.NewProcess()
	ctx2 := p2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	// Open in a different order: addresses must still match (they
	// derive from stable directory positions).
	for i := len(names) - 1; i >= 0; i-- {
		r, err := p2.Open(ctx2, names[i], 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if r.Addr() != addrs[names[i]] {
			t.Fatalf("region %q moved: %#x -> %#x", names[i], addrs[names[i]], r.Addr())
		}
		buf := make([]byte, 1)
		ctx2.ReadAt(r, 0, buf)
		if buf[0] != byte(i+1) {
			t.Fatalf("region %q content %d", names[i], buf[0])
		}
	}
}

// TestPersistLatencyScalesLinearly: the paper notes MemSnap cost is
// "fixed per-4KiB-page across all transaction sizes".
func TestPersistLatencyScalesLinearly(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "lin", 64<<20)

	measure := func(pages int) time.Duration {
		for i := 0; i < pages; i++ {
			ctx.WriteAt(r, int64(i)*PageSize, []byte{1})
		}
		ctx.Persist(r, MSSync)
		for i := 0; i < pages; i++ {
			ctx.WriteAt(r, int64(i)*PageSize, []byte{2})
		}
		start := ctx.Clock().Now()
		ctx.Persist(r, MSSync)
		return ctx.Clock().Now() - start
	}
	l16 := measure(16)
	l256 := measure(256)
	ratio := float64(l256) / float64(l16)
	if ratio < 4 || ratio > 20 {
		t.Fatalf("16->256 pages scaled %.1fx (16p=%v 256p=%v), want roughly linear", ratio, l16, l256)
	}
}

// TestCOWFaultChargesMoreThanTracking validates relative fault costs.
func TestCOWFaultChargesMoreThanTracking(t *testing.T) {
	sys := newSys(t)
	p := sys.NewProcess()
	ctx := p.NewContext(0)
	r, _ := p.Open(ctx, "cow", 1<<20)
	ctx.WriteAt(r, 0, []byte{1})

	// Tracking fault cost (second page, clean).
	before := ctx.Clock().Now()
	ctx.WriteAt(r, PageSize, []byte{1})
	tracking := ctx.Clock().Now() - before

	// COW fault: write during in-flight checkpoint.
	epoch, _ := ctx.Persist(r, MSAsync)
	before = ctx.Clock().Now()
	ctx.WriteAt(r, 0, []byte{2})
	cow := ctx.Clock().Now() - before
	ctx.Wait(r, epoch)

	if cow <= tracking {
		t.Fatalf("COW fault (%v) not costlier than tracking fault (%v)", cow, tracking)
	}
}
