package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"memsnap/internal/core"
)

// Per-shard region layout. Page 0 is the shard manifest; every
// following page is an array of fixed-size hash slots. Because the
// manifest page is dirtied in the same group commit as the slot pages
// it describes, a uCheckpoint always carries a mutually consistent
// (manifest, data) pair: recovery lands on the region's last durable
// epoch and the manifest counters exactly describe the slot contents.
const (
	// headerMagic identifies an initialized shard region ("MSHARD1\0").
	headerMagic uint64 = 0x0031_4452_4148_534d

	// slotSize is the on-region footprint of one key-value slot.
	slotSize = 64
	// MaxKeyLen bounds the composed tenant+key byte length.
	MaxKeyLen    = 40
	slotsPerPage = core.PageSize / slotSize

	// slot state byte values.
	slotEmpty = 0
	slotLive  = 1
	slotDead  = 2 // tombstone: keeps probe chains intact after Delete
)

// Manifest page field offsets (all little-endian).
const (
	hdrMagic   = 0  // u64
	hdrShardID = 8  // u32
	hdrShards  = 12 // u32 total shard count, guards against resharding
	hdrSlots   = 16 // u64 slot capacity
	hdrLive    = 24 // u64 live records
	hdrFills   = 32 // u64 live + tombstone slots (probe-chain occupancy)
	hdrApplied = 40 // u64 write operations applied since format
	hdrSum     = 48 // u64 wrapping sum of all live values
	hdrCommits = 56 // u64 group commits since format
	hdrEra     = 64 // u64 replication era (bumped by failover Promote)
)

// Slot field offsets within the 64-byte slot.
const (
	slotState = 0  // u8
	slotKLen  = 1  // u8
	slotKey   = 8  // MaxKeyLen bytes
	slotValue = 48 // u64
)

// manifest is the in-memory copy of the header page counters. The
// worker mutates the copy per operation and writes it back to page 0
// once per batch, so the header costs one dirty page per group commit.
type manifest struct {
	shardID uint32
	shards  uint32
	slots   uint64
	live    uint64
	fills   uint64
	applied uint64
	sum     uint64
	commits uint64
	era     uint64
}

// table gives one shard's worker typed access to its region. It is
// confined to the worker goroutine: all page access goes through the
// worker's Context so faults and costs land on the worker's clock.
type table struct {
	ctx    *core.Context
	region *core.Region
	man    manifest
}

// tableSlots returns the slot capacity of a region of regionBytes.
func tableSlots(regionBytes int64) uint64 {
	pages := regionBytes / core.PageSize
	if pages < 2 {
		return 0
	}
	return uint64(pages-1) * slotsPerPage
}

// format initializes a fresh shard region's manifest in memory. The
// caller persists it via the first group commit.
func (t *table) format(shardID, shards int, regionBytes int64, era uint64) {
	t.man = manifest{
		shardID: uint32(shardID),
		shards:  uint32(shards),
		slots:   tableSlots(regionBytes),
		era:     era,
	}
	t.writeManifest()
}

// load reads and validates the manifest of an existing shard region.
func (t *table) load(shardID, shards int, regionBytes int64) error {
	pg := t.ctx.PageForRead(t.region, 0)
	if binary.LittleEndian.Uint64(pg[hdrMagic:]) != headerMagic {
		return fmt.Errorf("shard %d: region %q has no valid manifest", shardID, t.region.Name())
	}
	t.man = manifest{
		shardID: binary.LittleEndian.Uint32(pg[hdrShardID:]),
		shards:  binary.LittleEndian.Uint32(pg[hdrShards:]),
		slots:   binary.LittleEndian.Uint64(pg[hdrSlots:]),
		live:    binary.LittleEndian.Uint64(pg[hdrLive:]),
		fills:   binary.LittleEndian.Uint64(pg[hdrFills:]),
		applied: binary.LittleEndian.Uint64(pg[hdrApplied:]),
		sum:     binary.LittleEndian.Uint64(pg[hdrSum:]),
		commits: binary.LittleEndian.Uint64(pg[hdrCommits:]),
		era:     binary.LittleEndian.Uint64(pg[hdrEra:]),
	}
	if int(t.man.shardID) != shardID {
		return fmt.Errorf("shard %d: region %q belongs to shard %d", shardID, t.region.Name(), t.man.shardID)
	}
	if int(t.man.shards) != shards {
		return fmt.Errorf("shard %d: region formatted for %d shards, service configured for %d (resharding unsupported)",
			shardID, t.man.shards, shards)
	}
	if want := tableSlots(regionBytes); t.man.slots != want {
		return fmt.Errorf("shard %d: region has %d slots, config implies %d", shardID, t.man.slots, want)
	}
	return nil
}

// writeManifest flushes the in-memory manifest to page 0, dirtying it
// into the worker's current uCheckpoint.
func (t *table) writeManifest() {
	pg := t.ctx.PageForWrite(t.region, 0)
	binary.LittleEndian.PutUint64(pg[hdrMagic:], headerMagic)
	binary.LittleEndian.PutUint32(pg[hdrShardID:], t.man.shardID)
	binary.LittleEndian.PutUint32(pg[hdrShards:], t.man.shards)
	binary.LittleEndian.PutUint64(pg[hdrSlots:], t.man.slots)
	binary.LittleEndian.PutUint64(pg[hdrLive:], t.man.live)
	binary.LittleEndian.PutUint64(pg[hdrFills:], t.man.fills)
	binary.LittleEndian.PutUint64(pg[hdrApplied:], t.man.applied)
	binary.LittleEndian.PutUint64(pg[hdrSum:], t.man.sum)
	binary.LittleEndian.PutUint64(pg[hdrCommits:], t.man.commits)
	binary.LittleEndian.PutUint64(pg[hdrEra:], t.man.era)
}

// ManifestMeta reads the replication-relevant manifest counters from a
// shard region through ctx: the group-commit sequence number, the
// replication era, and the live value sum. ok is false when the region
// carries no valid shard manifest (e.g. it was never committed).
func ManifestMeta(ctx *core.Context, r *core.Region) (seq, era, sum uint64, ok bool) {
	pg := ctx.PageForRead(r, 0)
	if binary.LittleEndian.Uint64(pg[hdrMagic:]) != headerMagic {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(pg[hdrCommits:]),
		binary.LittleEndian.Uint64(pg[hdrEra:]),
		binary.LittleEndian.Uint64(pg[hdrSum:]),
		true
}

// FormatRegion writes a fresh shard manifest into r and persists it
// as one synchronous uCheckpoint — exactly the initial state New
// gives a freshly formatted primary shard. A replication follower
// formats its fresh regions with this so an idle shard (one that
// never commits, hence never ships a delta) is still byte-identical
// across replicas: format is a pure function of its arguments.
func FormatRegion(ctx *core.Context, r *core.Region, shardID, shards int, regionBytes int64, era uint64) error {
	t := table{ctx: ctx, region: r}
	t.format(shardID, shards, regionBytes, era)
	_, err := ctx.Persist(r, core.MSSync)
	return err
}

// DigestRegion computes an FNV-1a digest over every page of a region
// in index order — the page-level fingerprint replication tests use to
// prove two replicas hold byte-identical contents. All reads go
// through ctx so the cost lands on the caller's clock.
func DigestRegion(ctx *core.Context, r *core.Region) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for off := int64(0); off < r.Len(); off += core.PageSize {
		pg := ctx.PageForRead(r, off)
		for _, b := range pg {
			h = (h ^ uint64(b)) * prime
		}
	}
	return h
}

// slotPage returns (page offset, byte offset within page) for slot i.
func slotPos(i uint64) (int64, int) {
	return int64(1+i/slotsPerPage) * core.PageSize, int(i%slotsPerPage) * slotSize
}

// probe walks the open-addressing chain for key. It returns the slot
// index of the live match, or the first insertable slot (empty or
// tombstone) when the key is absent, with found=false. ok=false means
// the table's probe chain is saturated.
func (t *table) probe(h uint64, key []byte) (idx uint64, found, ok bool) {
	insertAt := uint64(0)
	haveInsert := false
	for step := uint64(0); step < t.man.slots; step++ {
		i := (h + step) % t.man.slots
		pageOff, off := slotPos(i)
		pg := t.ctx.PageForRead(t.region, pageOff)
		switch pg[off+slotState] {
		case slotEmpty:
			if !haveInsert {
				insertAt, haveInsert = i, true
			}
			return insertAt, false, true
		case slotDead:
			if !haveInsert {
				insertAt, haveInsert = i, true
			}
		case slotLive:
			klen := int(pg[off+slotKLen])
			if klen == len(key) && bytes.Equal(pg[off+slotKey:off+slotKey+klen], key) {
				return i, true, true
			}
		}
	}
	return insertAt, false, haveInsert
}

// get returns the value stored under key.
func (t *table) get(h uint64, key []byte) (uint64, bool) {
	idx, found, _ := t.probe(h, key)
	if !found {
		return 0, false
	}
	pageOff, off := slotPos(idx)
	pg := t.ctx.PageForRead(t.region, pageOff)
	return binary.LittleEndian.Uint64(pg[off+slotValue:]), true
}

// put inserts or overwrites key. It returns the previous value (0 if
// absent) and whether the key existed, updating the manifest counters
// and wrapping value sum.
func (t *table) put(h uint64, key []byte, value uint64) (prev uint64, existed bool, err error) {
	idx, found, ok := t.probe(h, key)
	if !ok {
		return 0, false, ErrShardFull
	}
	// Cap occupancy at 3/4 so probe chains stay short; tombstone reuse
	// does not grow fills.
	pageOff, off := slotPos(idx)
	if !found {
		rpg := t.ctx.PageForRead(t.region, pageOff)
		if rpg[off+slotState] == slotEmpty && (t.man.fills+1)*4 > t.man.slots*3 {
			return 0, false, ErrShardFull
		}
	}
	pg := t.ctx.PageForWrite(t.region, pageOff)
	if found {
		prev = binary.LittleEndian.Uint64(pg[off+slotValue:])
		existed = true
	} else {
		if pg[off+slotState] == slotEmpty {
			t.man.fills++
		}
		pg[off+slotState] = slotLive
		pg[off+slotKLen] = byte(len(key))
		copy(pg[off+slotKey:off+slotKey+MaxKeyLen], make([]byte, MaxKeyLen))
		copy(pg[off+slotKey:], key)
		t.man.live++
	}
	binary.LittleEndian.PutUint64(pg[off+slotValue:], value)
	t.man.sum += value - prev // wrapping arithmetic keeps the invariant
	return prev, existed, nil
}

// add increments key by delta (two's-complement wrapping), creating
// the key at value delta when absent. Returns the new value.
func (t *table) add(h uint64, key []byte, delta uint64) (uint64, error) {
	cur, _ := t.get(h, key)
	next := cur + delta
	if _, _, err := t.put(h, key, next); err != nil {
		return 0, err
	}
	return next, nil
}

// del removes key, leaving a tombstone. Returns the removed value.
func (t *table) del(h uint64, key []byte) (uint64, bool) {
	idx, found, _ := t.probe(h, key)
	if !found {
		return 0, false
	}
	pageOff, off := slotPos(idx)
	pg := t.ctx.PageForWrite(t.region, pageOff)
	prev := binary.LittleEndian.Uint64(pg[off+slotValue:])
	pg[off+slotState] = slotDead
	t.man.live--
	t.man.sum -= prev
	return prev, true
}

// scan walks every slot and recomputes the live record count and
// value sum from the data itself — the recovery cross-check against
// the manifest.
func (t *table) scan() (records, sum uint64) {
	for i := uint64(0); i < t.man.slots; i++ {
		pageOff, off := slotPos(i)
		pg := t.ctx.PageForRead(t.region, pageOff)
		if pg[off+slotState] == slotLive {
			records++
			sum += binary.LittleEndian.Uint64(pg[off+slotValue:])
		}
	}
	return records, sum
}
