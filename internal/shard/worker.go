package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/objstore"
	"memsnap/internal/obs"
	"memsnap/internal/sim"
)

// shard is one service shard: a region, its worker Context, and the
// bounded request queue the router feeds.
type shard struct {
	id     int
	svc    *Service
	ctx    *core.Context
	region *core.Region
	tab    table
	queue  chan *request

	// Statistics. The worker-owned fields are guarded by statsMu so
	// Stats() can snapshot them while the worker runs; rejected and
	// queueHW are updated from client goroutines, hence atomics.
	statsMu    sync.Mutex
	ops        int64
	writes     int64
	reads      int64
	commits    int64
	batchOps   int64 // total write ops across commits (occupancy numerator)
	lastSubmit time.Duration
	lastDur    time.Duration
	commitLat  *sim.LatencyRecorder
	startedAt  time.Duration
	// stages mirrors the worker context's cumulative persist-stage
	// breakdown under statsMu (the context field itself is
	// worker-confined).
	stages   core.PersistStageTotals
	rejected atomic.Int64
	queueHW  atomic.Int64

	// Latency histograms (log2 buckets, lock-free record): commitHist
	// tracks apply-start to writer-ack, persistHist tracks IO submit to
	// durable. Recorded by the worker in retire; snapshotted by Stats.
	commitHist  obs.Histogram
	persistHist obs.Histogram
}

func newLatency() *sim.LatencyRecorder { return sim.NewLatencyRecorder() }

// noteDepth records a queue high-water mark observed at submit time.
func (sh *shard) noteDepth(depth int) {
	for {
		cur := sh.queueHW.Load()
		if int64(depth) <= cur || sh.queueHW.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// pendingBatch is a group commit whose IO is in flight: its epoch has
// been initiated with MSAsync and its write requests are acknowledged
// once the worker Waits for durability.
type pendingBatch struct {
	epoch  objstore.Epoch
	writes []*request
	start  time.Duration // virtual time the batch began applying
	submit time.Duration // virtual time the uCheckpoint IO was initiated
	commit *Commit       // captured delta, when a Replicator is attached
	flow   uint64        // trace id of the batch's first sampled request
}

// run is the shard worker loop. One batch of IO may be in flight at a
// time: after initiating batch k's uCheckpoint asynchronously the
// worker immediately applies batch k+1 in memory, then waits for
// batch k and acknowledges its writers — the MSAsync+Wait overlap
// from the paper's API, lifted to group commits.
func (sh *shard) run() {
	defer sh.svc.wg.Done()
	// After the shutdown drain, return the retained pre-image pages
	// (and any undelivered captures) to the capture pools.
	defer sh.ctx.CaptureCommits(false)
	var inflight *pendingBatch
	for {
		var first *request
		if inflight == nil {
			// Nothing to retire: block for work or shutdown.
			select {
			case first = <-sh.queue:
			case <-sh.svc.stop:
				sh.shutdown(nil)
				return
			}
		} else {
			// IO in flight: never block while writers await their
			// ack. If the queue is momentarily empty, retire the
			// in-flight batch instead of batching further.
			select {
			case first = <-sh.queue:
			case <-sh.svc.stop:
				sh.shutdown(inflight)
				return
			default:
				sh.retire(inflight)
				inflight = nil
				continue
			}
		}

		batch := sh.gather(first)
		pending := sh.apply(batch)
		if pending == nil {
			continue // read-only batch (or all ops failed): no commit
		}
		if inflight != nil {
			sh.retire(inflight)
		}
		inflight = pending
	}
}

// gather coalesces queued requests behind first, up to BatchSize.
// With a CommitInterval configured the worker lingers that much
// virtual time once, yielding so concurrent clients can join the
// group commit.
func (sh *shard) gather(first *request) []*request {
	batch := []*request{first}
	lingered := false
	for len(batch) < sh.svc.cfg.BatchSize {
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
			continue
		default:
		}
		if lingered || sh.svc.cfg.CommitInterval <= 0 {
			break
		}
		sh.ctx.Clock().Advance(sh.svc.cfg.CommitInterval)
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		lingered = true
	}
	return batch
}

// apply executes a batch against the shard table. Reads (and writes
// that fail validation) are answered immediately; successful writes
// are folded into one uCheckpoint whose IO is initiated here with
// MSAsync, and are answered by retire once it is durable. Returns nil
// when the batch dirtied nothing. Captured pages move into the
// pendingBatch's Commit, whose consumer releases them (Owned: true).
//
//memsnap:owns
func (sh *shard) apply(batch []*request) *pendingBatch {
	start := sh.ctx.Clock().Now()
	// The batch's flow id: the first sampled request's trace id, carried
	// onto the batch spans and the outgoing Commit. Sampling is sparse,
	// so batches almost never hold two sampled requests; when one does,
	// the first wins (the others still stitch client↔net lanes).
	var flow uint64
	for _, r := range batch {
		if r.op.TraceID != 0 {
			flow = r.op.TraceID
			break
		}
	}
	// One queue-wait span per batch: enqueue of the oldest request to
	// apply start (the worker clock is monotone past every stamp).
	sh.svc.cfg.Recorder.SpanFlow(obs.CatShard, obs.NameQueueWait, obs.ShardTrack(sh.id),
		batch[0].at, start-batch[0].at, int64(len(batch)), flow)
	var writes []*request
	var reads, writeOps int64
	for _, r := range batch {
		if resp, isWrite := sh.applyOne(r.op); isWrite {
			resp.Tag = r.tag
			r.ack = resp // completed by retire once durable
			writes = append(writes, r)
			writeOps++
		} else {
			resp.Tag = r.tag
			sh.svc.cfg.Tenants.Observe(r.op.Tenant, r.op.WireBytes, start-r.at)
			r.resp <- resp
			putRequest(r)
			reads++
		}
	}

	sh.statsMu.Lock()
	sh.ops += int64(len(batch))
	sh.reads += reads
	sh.writes += writeOps
	sh.statsMu.Unlock()

	if len(writes) == 0 {
		return nil
	}

	// Manifest counters ride in the same dirty set as the slot pages,
	// making (data, manifest) atomic per group commit.
	sh.tab.man.applied += uint64(writeOps)
	sh.tab.man.commits++
	sh.tab.writeManifest()

	submitAt := sh.ctx.Clock().Now()
	epoch, err := sh.ctx.Persist(sh.region, core.MSAsync)
	if err != nil {
		for _, r := range writes {
			r.resp <- Response{Tag: r.tag, Err: err}
			putRequest(r)
		}
		return nil
	}
	sh.statsMu.Lock()
	sh.commits++
	sh.batchOps += writeOps
	sh.lastSubmit = submitAt
	sh.stages = sh.ctx.StageTotals
	sh.statsMu.Unlock()

	// With a Replicator attached the Persist above captured the
	// uCheckpoint's dirty pages; stamp them with the replication
	// position the manifest page already carries. The pages move into
	// a per-commit pooled slice (this batch stays pending while the
	// next one applies, so the worker cannot reuse one buffer), and
	// ownership passes to the Replicator via Owned.
	var commit *Commit
	if sh.svc.cfg.Replicator != nil {
		caps := sh.ctx.TakeCaptured()
		n := 0
		for i := range caps {
			n += len(caps[i].Pages)
		}
		if n > 0 {
			pages := core.GetCommittedPages(n)
			for i := range caps {
				pages = caps[i].MovePages(pages)
			}
			commit = &Commit{Seq: sh.tab.man.commits, Era: sh.tab.man.era, Epoch: epoch, Pages: pages, Owned: true, TraceID: flow}
		}
	}
	return &pendingBatch{epoch: epoch, writes: writes, start: start, submit: submitAt, commit: commit, flow: flow}
}

// applyOne executes a single op. isWrite reports that the op dirtied
// the region and its (successful) response must wait for durability.
func (sh *shard) applyOne(op Op) (resp Response, isWrite bool) {
	switch op.Kind {
	case opSum:
		return Response{Value: sh.tab.man.sum}, false
	case opMeta:
		return Response{
			Value: sh.tab.man.sum,
			snap: &Snapshot{
				Shard: sh.id,
				Seq:   sh.tab.man.commits,
				Era:   sh.tab.man.era,
				Epoch: sh.region.Epoch(),
			},
		}, false
	case opSnapshot:
		snap := sh.snapshot()
		return Response{snap: &snap}, false
	case opDigest:
		return Response{Value: DigestRegion(sh.ctx, sh.region)}, false
	case OpGet:
		key, err := composeKey(op.Tenant, op.Key)
		if err != nil {
			return Response{Err: err}, false
		}
		v, ok := sh.tab.get(fnv1a(op.Tenant, op.Key), key)
		return Response{Value: v, Found: ok}, false
	case OpPut:
		key, _ := composeKey(op.Tenant, op.Key)
		if _, _, err := sh.tab.put(fnv1a(op.Tenant, op.Key), key, op.Value); err != nil {
			return Response{Err: err}, false
		}
		return Response{Value: op.Value}, true
	case OpAdd:
		key, _ := composeKey(op.Tenant, op.Key)
		v, err := sh.tab.add(fnv1a(op.Tenant, op.Key), key, op.Value)
		if err != nil {
			return Response{Err: err}, false
		}
		return Response{Value: v}, true
	case OpDelete:
		key, _ := composeKey(op.Tenant, op.Key)
		v, found := sh.tab.del(fnv1a(op.Tenant, op.Key), key)
		if !found {
			return Response{Found: false}, false
		}
		return Response{Value: v, Found: true}, true
	case OpTransfer:
		from, _ := composeKey(op.Tenant, op.Key)
		to, _ := composeKey(op.Tenant, op.Key2)
		hFrom, hTo := fnv1a(op.Tenant, op.Key), fnv1a(op.Tenant, op.Key2)
		bal, ok := sh.tab.get(hFrom, from)
		if !ok || bal < op.Value {
			return Response{Err: ErrInsufficient}, false
		}
		if _, _, err := sh.tab.put(hFrom, from, bal-op.Value); err != nil {
			return Response{Err: err}, false
		}
		if _, err := sh.tab.add(hTo, to, op.Value); err != nil {
			// Roll the debit back so a full table never loses money.
			sh.tab.put(hFrom, from, bal)
			return Response{Err: err}, false
		}
		return Response{Value: bal - op.Value}, true
	}
	return Response{Err: errUnknownOp(op.Kind)}, false
}

type errUnknownOp OpKind

func (e errUnknownOp) Error() string { return "shard: unknown op kind" }

// retire waits for an in-flight group commit to become durable, ships
// its delta to the replicator, and acknowledges its writers. A
// synchronous replicator returns the follower-ack time, so the acks
// below — and the recorded commit latency — include the replication
// round trip; a replication error is delivered in every write
// response (the writes are locally durable but unconfirmed remotely).
func (sh *shard) retire(b *pendingBatch) {
	sh.ctx.Wait(sh.region, b.epoch)
	durable := sh.ctx.Clock().Now()
	var shipErr error
	if rep := sh.svc.cfg.Replicator; rep != nil && b.commit != nil {
		ackAt, err := rep.ShipCommit(sh.id, durable, *b.commit, sh.snapshot)
		sh.ctx.Clock().AdvanceTo(ackAt)
		shipErr = err
	}
	now := sh.ctx.Clock().Now()
	sh.commitHist.Record(now - b.start)
	sh.persistHist.Record(durable - b.submit)
	sh.svc.cfg.Recorder.SpanFlow(obs.CatShard, obs.NameGroupCommit, obs.ShardTrack(sh.id),
		b.start, now-b.start, int64(len(b.writes)), b.flow)
	sh.statsMu.Lock()
	sh.lastDur = durable
	sh.commitLat.Record(now - b.start)
	sh.stages = sh.ctx.StageTotals
	sh.statsMu.Unlock()
	for _, r := range b.writes {
		r.ack.Epoch = b.epoch
		if shipErr != nil {
			r.ack.Err = shipErr
		}
		sh.svc.cfg.Tenants.Observe(r.op.Tenant, r.op.WireBytes, now-r.at)
		r.resp <- r.ack
		putRequest(r)
	}
}

// shutdown performs the final drain: retire any in-flight batch, then
// apply and synchronously commit everything left in the queue.
func (sh *shard) shutdown(inflight *pendingBatch) {
	if inflight != nil {
		sh.retire(inflight)
	}
	for {
		var first *request
		select {
		case first = <-sh.queue:
		default:
			return
		}
		batch := sh.gather(first)
		if pending := sh.apply(batch); pending != nil {
			sh.retire(pending)
		}
	}
}
