// Package shard implements a sharded, multi-tenant key-value service
// on top of the MemSnap core — the repository's first serving
// subsystem. A router hashes (tenant, key) pairs across N shards; each
// shard owns one MemSnap region, one dedicated worker Context, and a
// bounded request queue. Workers coalesce many client writes into one
// group-commit uCheckpoint per batch (MSAsync + Wait overlaps the IO
// of batch k with the in-memory application of batch k+1), apply
// backpressure when queues fill, and export per-shard statistics.
//
// Durability contract: a write operation's response is delivered only
// after the group commit containing it is durable, so every
// acknowledged write survives any later power cut. Each shard region
// carries a manifest page committed atomically with the data it
// describes; reopening the service after a crash recovers every shard
// to its last durable epoch and cross-checks the manifest against a
// full scan of the shard's records.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/objstore"
	"memsnap/internal/obs"
)

// Service errors.
var (
	// ErrBackpressure is returned by TryDo when the target shard's
	// queue is full (admission control).
	ErrBackpressure = errors.New("shard: queue full")
	// ErrClosed is returned for operations submitted after Close.
	ErrClosed = errors.New("shard: service closed")
	// ErrKeyTooLong is returned when tenant+key exceeds MaxKeyLen.
	ErrKeyTooLong = errors.New("shard: tenant+key too long")
	// ErrCrossShard is returned by Transfer when the two keys hash to
	// different shards (cross-shard transactions are not supported).
	ErrCrossShard = errors.New("shard: keys on different shards")
	// ErrShardFull is returned when a shard's slot table is at its
	// occupancy limit.
	ErrShardFull = errors.New("shard: table full")
	// ErrInsufficient is returned by Transfer when the source key is
	// missing or its balance is below the transfer amount.
	ErrInsufficient = errors.New("shard: insufficient balance")
)

// OpKind selects a service operation.
type OpKind int

const (
	// OpGet reads a key. Responds immediately after apply (reads need
	// no durability wait).
	OpGet OpKind = iota
	// OpPut sets a key to a value. Acknowledged when durable.
	OpPut
	// OpAdd increments a key by a delta (creating it at the delta).
	OpAdd
	// OpDelete removes a key.
	OpDelete
	// OpTransfer atomically moves Value from Key to Key2 of the same
	// tenant. Both keys must route to the same shard; the transfer is
	// applied within one batch, so every durable epoch preserves the
	// shard's value sum.
	OpTransfer
	// opSum is internal: it reads the shard's manifest counters
	// through the worker, serialized with applies.
	opSum
	// opMeta is internal: it reads the shard's replication metadata
	// (commit seq, era, sum, epoch) through the worker.
	opMeta
	// opSnapshot is internal: it copies the shard's full region
	// through the worker, serialized with applies, for replication
	// catch-up transfers.
	opSnapshot
	// opDigest is internal: it computes the shard's page-level region
	// digest through the worker.
	opDigest
)

// Op is one client request.
type Op struct {
	Kind   OpKind
	Tenant string
	Key    string
	Key2   string // OpTransfer destination
	Value  uint64 // OpPut value / OpAdd delta / OpTransfer amount
	// TraceID is the distributed trace id of a sampled request (0:
	// untraced, the overwhelmingly common case). Workers stamp it onto
	// their queue-wait/group-commit spans and the outgoing Commit, so
	// one sampled request stitches across client, wire, shard and
	// replication lanes. Propagation is a plain integer copy — the
	// untraced hot path stays allocation-free.
	TraceID uint64
	// WireBytes is the request's frame size on the wire (0 for
	// in-process callers); the per-tenant attribution sketch charges it
	// to Tenant when the op completes.
	WireBytes uint32
}

// Response is the outcome of one Op.
type Response struct {
	// Tag echoes the caller-chosen correlation tag of a tagged
	// submission (DoTagged/TryDoTagged); zero for the plain APIs.
	// Pipelined callers multiplexing many ops onto one response
	// channel use it to match completions, which arrive out of order
	// across shards.
	Tag uint64
	// Value is the read value (OpGet), the post-increment value
	// (OpAdd), the deleted value (OpDelete), or the shard value sum
	// (internal sum probe).
	Value uint64
	// Found reports key presence for OpGet/OpDelete.
	Found bool
	// Epoch is the uCheckpoint epoch that made a write durable.
	Epoch objstore.Epoch
	// Err is the per-operation error, if any.
	Err error

	// snap carries the payload of internal metadata/snapshot probes.
	snap *Snapshot
}

// Config sizes the service.
type Config struct {
	// Shards is the number of independent shards (default 8).
	Shards int
	// QueueDepth bounds each shard's request queue (default 256);
	// TryDo fails with ErrBackpressure when the queue is full.
	QueueDepth int
	// BatchSize caps the number of requests coalesced into one group
	// commit (default 16).
	BatchSize int
	// CommitInterval, when positive, makes a worker linger that much
	// virtual time with a non-full batch before committing, giving
	// concurrent clients a window to join the group commit.
	CommitInterval time.Duration
	// RegionBytes is the per-shard region size (default 4 MiB).
	RegionBytes int64
	// StartAt positions worker clocks at a virtual time, e.g. the
	// recovery completion time returned by core.Recover.
	StartAt time.Duration
	// Era is the replication era stamped into every manifest the
	// service commits. Failover bumps it (Promote opens the new
	// primary with the highest era it has seen, plus one) so a
	// divergent ex-primary can be detected and reconciled. Existing
	// regions keep their stored era when it is higher.
	Era uint64
	// Replicator, when set, receives every group commit after it is
	// locally durable; in synchronous replication the worker holds the
	// client acks until the replicator returns. See the Replicator
	// interface.
	Replicator Replicator
	// Recorder, when set, receives lifecycle trace events from every
	// shard: worker fault instants and persist-stage spans (via the
	// worker Context) plus queue-wait and group-commit spans, each on
	// the shard's trace lane (obs.ShardTrack). Drain it through
	// obs.WriteTrace or the obs server's /tracez.
	Recorder *obs.Recorder
	// Tenants, when set, receives per-tenant attribution (ops, wire
	// bytes, commit latency) on every completed request carrying a
	// tenant — the space-saving top-K sketch behind /topz and the
	// memsnap_tenant_* Prometheus series.
	Tenants *obs.TenantSketch
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.RegionBytes <= 0 {
		c.RegionBytes = 4 << 20
	}
}

// ShardRecovery describes the state one shard was opened in.
type ShardRecovery struct {
	Shard int
	// Existing is true when the shard region pre-existed (reopen
	// after crash or restart) rather than being freshly formatted.
	Existing bool
	// Epoch is the durable epoch the shard recovered to.
	Epoch objstore.Epoch
	// Applied, Records, ValueSum are the manifest counters at open.
	Applied  uint64
	Records  uint64
	ValueSum uint64
	// Seq and Era are the replication position the shard opened at:
	// its group-commit counter and replication era.
	Seq uint64
	Era uint64
	// ScanRecords and ScanSum are recomputed from the slot data; a
	// consistent recovery has them equal to the manifest counters.
	ScanRecords uint64
	ScanSum     uint64
}

// Consistent reports whether the manifest matches the scanned data.
func (r ShardRecovery) Consistent() bool {
	return r.Records == r.ScanRecords && r.ValueSum == r.ScanSum
}

// Service is the sharded KV front end.
type Service struct {
	cfg    Config
	sys    *core.System
	proc   *core.Process
	shards []*shard

	recovery []ShardRecovery

	stop    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	closeMu sync.Mutex
	// submitMu serializes enqueue against Close's final drain: submit
	// paths hold it shared around the closed-check plus enqueue, and
	// Close takes it exclusively before draining, so a request can
	// never slip into a queue after the drain and hang its caller.
	submitMu sync.RWMutex
}

// request is an Op plus its response channel. ack buffers a write's
// apply-time response until its group commit is durable. at is the
// worker-clock virtual time the request was enqueued (read atomically
// from the client goroutine), feeding the queue-wait trace span. tag
// is the caller's correlation tag, echoed in Response.Tag.
//
// Requests are pooled: every response path returns the struct through
// putRequest immediately after the single send on resp, so the
// steady-state serving path allocates no request structs. The
// response channel is NOT pooled — for the plain APIs its ownership
// passes to the caller; for tagged submissions it belongs to the
// caller outright.
type request struct {
	op   Op
	resp chan Response
	ack  Response
	at   time.Duration
	tag  uint64
}

// requestPool recycles request structs across submissions.
var requestPool = sync.Pool{New: func() any { return new(request) }}

// getRequest returns a zeroed request carrying op, tag and resp.
func getRequest(op Op, tag uint64, resp chan Response) *request {
	r := requestPool.Get().(*request)
	*r = request{op: op, resp: resp, tag: tag}
	return r
}

// putRequest recycles r. Callers must not touch r afterwards; the
// single permitted response send must already have happened.
func putRequest(r *request) {
	*r = request{}
	requestPool.Put(r)
}

// RegionName returns the fixed region name for a shard. Followers use
// the same names in their own store so Promote can reopen the regions
// through the standard recovery path.
func RegionName(i int) string { return fmt.Sprintf("shardsvc/%03d", i) }

// New opens the service over a MemSnap system, formatting fresh shard
// regions or recovering existing ones. When regions pre-exist (e.g.
// after core.Recover), every shard is reopened at its last durable
// epoch and its manifest is cross-checked against a full scan; the
// reports are available via Recovery().
//
// Workers run on CPUs shard-id modulo the system CPU count; configure
// the system with at least Shards CPUs to give each worker a private
// TLB, as a real deployment would.
func New(sys *core.System, cfg Config) (*Service, error) {
	s, err := open(sys, cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// open builds the service and formats/recovers every shard without
// starting the workers. Split from New so tests can exercise queue
// admission deterministically.
func open(sys *core.System, cfg Config) (*Service, error) {
	cfg.fill()
	if tableSlots(cfg.RegionBytes) == 0 {
		return nil, fmt.Errorf("shard: RegionBytes %d too small", cfg.RegionBytes)
	}
	s := &Service{
		cfg:  cfg,
		sys:  sys,
		proc: sys.NewProcess(),
		stop: make(chan struct{}),
	}

	existing := make(map[string]bool)
	for _, name := range sys.RegionNames() {
		existing[name] = true
	}

	for i := 0; i < cfg.Shards; i++ {
		ctx := s.proc.NewContext(i)
		ctx.Clock().AdvanceTo(cfg.StartAt)
		ctx.SetRecorder(cfg.Recorder, obs.ShardTrack(i))
		pre := existing[RegionName(i)]
		region, err := s.proc.Open(ctx, RegionName(i), cfg.RegionBytes)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			id:        i,
			svc:       s,
			ctx:       ctx,
			region:    region,
			tab:       table{ctx: ctx, region: region},
			queue:     make(chan *request, cfg.QueueDepth),
			commitLat: newLatency(),
			startedAt: ctx.Clock().Now(),
		}
		rec := ShardRecovery{Shard: i, Existing: pre}
		if pre {
			if err := sh.tab.load(i, cfg.Shards, cfg.RegionBytes); err != nil {
				return nil, err
			}
			// A promoted service opens recovered regions under a newer
			// era; regions already ahead (we were the follower of an
			// even newer primary) keep their stored era.
			if cfg.Era > sh.tab.man.era {
				sh.tab.man.era = cfg.Era
			}
			rec.Epoch = region.Epoch()
			rec.Applied = sh.tab.man.applied
			rec.Records = sh.tab.man.live
			rec.ValueSum = sh.tab.man.sum
			rec.Seq = sh.tab.man.commits
			rec.Era = sh.tab.man.era
			rec.ScanRecords, rec.ScanSum = sh.tab.scan()
		} else {
			sh.tab.format(i, cfg.Shards, cfg.RegionBytes, cfg.Era)
			// Make the empty manifest durable immediately so a crash
			// before the first client write still recovers an
			// initialized shard.
			epoch, err := ctx.Persist(region, core.MSSync)
			if err != nil {
				return nil, err
			}
			rec.Epoch = epoch
			rec.Era = cfg.Era
		}
		// Capture deltas only from here on: the format commit above is
		// not shipped (a follower reconstructs it from the first
		// captured delta, whose dirty set includes the manifest page).
		if cfg.Replicator != nil {
			ctx.CaptureCommits(true)
		}
		s.shards = append(s.shards, sh)
		s.recovery = append(s.recovery, rec)
	}
	return s, nil
}

// start launches one worker goroutine per shard.
func (s *Service) start() {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
}

// Recovery returns each shard's open-time recovery report.
func (s *Service) Recovery() []ShardRecovery {
	return append([]ShardRecovery(nil), s.recovery...)
}

// NumShards returns the shard count.
func (s *Service) NumShards() int { return len(s.shards) }

// fnv1a hashes the composed tenant+key.
func fnv1a(tenant, key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * prime
	}
	h = (h ^ 0) * prime // tenant/key separator
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	return h
}

// ShardOf returns the shard a key routes to.
func (s *Service) ShardOf(tenant, key string) int {
	// Shard selection uses the high hash bits; slot probing uses the
	// full hash, so co-sharded keys do not collide into one chain.
	return int((fnv1a(tenant, key) >> 48) % uint64(len(s.shards)))
}

// checkKeyLen validates the composed length of (tenant, key) without
// building the key — the allocation-free check for routing/validation
// paths that discard the bytes.
func checkKeyLen(tenant, key string) error {
	if len(tenant)+1+len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	return nil
}

// composeKey builds the region-resident key bytes for (tenant, key).
func composeKey(tenant, key string) ([]byte, error) {
	if err := checkKeyLen(tenant, key); err != nil {
		return nil, err
	}
	b := make([]byte, 0, len(tenant)+1+len(key))
	b = append(b, tenant...)
	b = append(b, 0)
	b = append(b, key...)
	return b, nil
}

// route validates op and picks its shard.
func (s *Service) route(op Op) (*shard, error) {
	if op.Kind != opSum {
		if err := checkKeyLen(op.Tenant, op.Key); err != nil {
			return nil, err
		}
	}
	sh := s.shards[s.ShardOf(op.Tenant, op.Key)]
	if op.Kind == OpTransfer {
		if err := checkKeyLen(op.Tenant, op.Key2); err != nil {
			return nil, err
		}
		if s.ShardOf(op.Tenant, op.Key2) != sh.id {
			return nil, ErrCrossShard
		}
	}
	return sh, nil
}

// submit enqueues r on sh under the submit lock. Blocking submits wait
// for queue space but abort with ErrClosed when the service stops;
// non-blocking submits fail fast with ErrBackpressure. On any error
// the request was not enqueued, no response will be sent, and r is
// recycled here — the caller must not touch it again.
//
// Drain ordering invariant (see Close): an enqueue can only happen
// while the workers are still running, because Close flips the closed
// flag under the exclusive submit lock *before* stopping them. Every
// request that passes the closed-check below is therefore applied and
// answered by a worker — admission implies exactly one response, and
// an accepted write is always driven to durability.
func (s *Service) submit(sh *shard, r *request, block bool) error {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closed.Load() {
		putRequest(r)
		return ErrClosed
	}
	// Stamp the enqueue time for the queue-wait span. Cross-goroutine
	// reads of a worker clock go through its atomic Now.
	r.at = sh.ctx.Clock().Now()
	if block {
		sh.noteDepth(len(sh.queue) + 1)
		select {
		case sh.queue <- r:
			return nil
		case <-s.stop:
			putRequest(r)
			return ErrClosed
		}
	}
	select {
	case sh.queue <- r:
		sh.noteDepth(len(sh.queue))
		return nil
	default:
		sh.rejected.Add(1)
		putRequest(r)
		return ErrBackpressure
	}
}

// DoAsync submits op and returns a channel that will receive its
// response: immediately after apply for reads, after the group commit
// is durable for writes. It blocks while the shard queue is full.
func (s *Service) DoAsync(op Op) (<-chan Response, error) {
	sh, err := s.route(op)
	if err != nil {
		return nil, err
	}
	ch := make(chan Response, 1)
	if err := s.submit(sh, getRequest(op, 0, ch), true); err != nil {
		return nil, err
	}
	return ch, nil
}

// TryDoAsync is DoAsync with admission control: when the shard queue
// is full it rejects the op with ErrBackpressure instead of blocking.
func (s *Service) TryDoAsync(op Op) (<-chan Response, error) {
	sh, err := s.route(op)
	if err != nil {
		return nil, err
	}
	ch := make(chan Response, 1)
	if err := s.submit(sh, getRequest(op, 0, ch), false); err != nil {
		return nil, err
	}
	return ch, nil
}

// DoTagged submits op for pipelined completion: the response —
// carrying tag in Response.Tag — is delivered on the caller-owned
// resp channel, immediately after apply for reads and after durable
// group commit for writes. Many in-flight ops may share one channel;
// completions arrive out of order across shards. It blocks while the
// target shard's queue is full.
//
// Contract: the worker sends exactly one Response per accepted op
// (nil return) and sends without waiting — resp must have capacity
// for every response the caller can have outstanding, or shard
// workers stall. A non-nil return means no response will arrive.
func (s *Service) DoTagged(op Op, tag uint64, resp chan Response) error {
	sh, err := s.route(op)
	if err != nil {
		return err
	}
	return s.submit(sh, getRequest(op, tag, resp), true)
}

// TryDoTagged is DoTagged with admission control: when the shard
// queue is full it rejects the op with ErrBackpressure instead of
// blocking (the network server surfaces this as a RETRY_AFTER status
// rather than stalling its read loop).
func (s *Service) TryDoTagged(op Op, tag uint64, resp chan Response) error {
	sh, err := s.route(op)
	if err != nil {
		return err
	}
	return s.submit(sh, getRequest(op, tag, resp), false)
}

// Do submits op and waits for its response.
func (s *Service) Do(op Op) Response {
	ch, err := s.DoAsync(op)
	if err != nil {
		return Response{Err: err}
	}
	return <-ch
}

// TryDo is Do with admission control (ErrBackpressure when full).
func (s *Service) TryDo(op Op) (Response, error) {
	ch, err := s.TryDoAsync(op)
	if err != nil {
		return Response{}, err
	}
	return <-ch, nil
}

// Put durably sets tenant/key to value.
func (s *Service) Put(tenant, key string, value uint64) error {
	return s.Do(Op{Kind: OpPut, Tenant: tenant, Key: key, Value: value}).Err
}

// Get reads tenant/key.
func (s *Service) Get(tenant, key string) (uint64, bool, error) {
	r := s.Do(Op{Kind: OpGet, Tenant: tenant, Key: key})
	return r.Value, r.Found, r.Err
}

// Add durably increments tenant/key by delta, returning the new value.
func (s *Service) Add(tenant, key string, delta uint64) (uint64, error) {
	r := s.Do(Op{Kind: OpAdd, Tenant: tenant, Key: key, Value: delta})
	return r.Value, r.Err
}

// Delete durably removes tenant/key.
func (s *Service) Delete(tenant, key string) (bool, error) {
	r := s.Do(Op{Kind: OpDelete, Tenant: tenant, Key: key})
	return r.Found, r.Err
}

// Transfer durably moves amount from one key to another of the same
// tenant. Both keys must route to the same shard; the two updates are
// applied in one batch so every durable epoch preserves the shard's
// value sum.
func (s *Service) Transfer(tenant, from, to string, amount uint64) error {
	return s.Do(Op{Kind: OpTransfer, Tenant: tenant, Key: from, Key2: to, Value: amount}).Err
}

// probe submits an internal read-only op to one shard and waits for
// its response, serialized with in-flight applies. The channel is
// captured before submit: once enqueued, the pooled request belongs
// to the worker.
func (s *Service) probe(sh *shard, kind OpKind) (Response, error) {
	ch := make(chan Response, 1)
	if err := s.submit(sh, getRequest(Op{Kind: kind}, 0, ch), true); err != nil {
		return Response{}, err
	}
	resp := <-ch
	if resp.Err != nil {
		return Response{}, resp.Err
	}
	return resp, nil
}

// ShardSums reads every shard's manifest value sum through its worker
// queue, serialized with in-flight applies.
func (s *Service) ShardSums() ([]uint64, error) {
	sums := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		resp, err := s.probe(sh, opSum)
		if err != nil {
			return nil, err
		}
		sums[i] = resp.Value
	}
	return sums, nil
}

// TotalValueSum returns the wrapping sum of all live values across
// every shard.
func (s *Service) TotalValueSum() (uint64, error) {
	sums, err := s.ShardSums()
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, v := range sums {
		total += v
	}
	return total, nil
}

// Close drains every shard, group-commits any buffered writes
// synchronously, and stops the workers. It is idempotent (subsequent
// calls return nil immediately) and safe to call concurrently with
// in-flight submissions and after a simulated crash (CutPower).
//
// Drain ordering: Close first flips the closed flag under the
// EXCLUSIVE submit lock, while the workers are still running, and
// only then stops them. The exclusive acquisition waits out every
// submission already past its closed-check — those enqueues land
// while workers are alive and are fully applied (writes driven to
// durable group commits) by the workers' shutdown drain; every later
// submission observes the flag and fails with ErrClosed before
// enqueueing. The result is the pipelined-shutdown contract the
// network server depends on: every admitted request is answered
// exactly once with its real outcome — an accepted op is never
// retroactively rejected, no ack is lost, and nothing is answered
// twice. A final queue sweep remains as defense in depth but is
// unreachable under this ordering (the drain regression test pins
// the contract).
//
// Note that after a CutPower the workers' final synchronous commits
// write into the post-cut array; a crash test that wants the torn
// state must Close first and cut at a virtual time bracketed by the
// stats' LastCommitSubmit/LastCommitDurable, as TestCrashRecoveryMidCommit
// does.
func (s *Service) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	// Stop admissions first: after this unlock no request can enter a
	// queue, and everything already admitted is in a queue a live
	// worker will drain.
	s.submitMu.Lock()
	s.closed.Store(true)
	s.submitMu.Unlock()
	// Now stop the workers; their shutdown path drains and commits
	// every queued request.
	close(s.stop)
	s.wg.Wait()
	// Defense in depth: under the ordering above the queues are empty
	// here. Sweep anyway so a future regression fails a request loudly
	// (exactly once) instead of hanging its caller.
	for _, sh := range s.shards {
	drain:
		for {
			select {
			case r := <-sh.queue:
				r.resp <- Response{Tag: r.tag, Err: ErrClosed}
				putRequest(r)
			default:
				break drain
			}
		}
	}
	return nil
}

// EndTime returns the latest virtual time across shard workers — the
// service's wall-clock analogue for throughput computations.
func (s *Service) EndTime() time.Duration {
	var end time.Duration
	for _, sh := range s.shards {
		if t := sh.ctx.Clock().Now(); t > end {
			end = t
		}
	}
	return end
}
