package shard

import (
	"fmt"
	"testing"
	"time"

	"memsnap/internal/sim"
)

// TestCloseIdempotent: Close may be called any number of times; every
// call after the first is a nil-error no-op, and submissions racing or
// following Close fail with ErrClosed instead of being silently lost.
func TestCloseIdempotent(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Put("t", "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close = %v; want nil", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("third Close = %v; want nil", err)
	}
	if err := svc.Put("t", "b", 1); err != ErrClosed {
		t.Fatalf("Put after Close = %v; want ErrClosed", err)
	}
	if _, err := svc.TryDoAsync(Op{Kind: OpPut, Tenant: "t", Key: "c", Value: 1}); err != ErrClosed {
		t.Fatalf("TryDoAsync after Close = %v; want ErrClosed", err)
	}
}

// TestCloseAfterCrash: cutting power on the backing array while the
// service is still up (the crash-injection pattern) must not make
// Close panic or hang — Close drains, stays idempotent, and later
// submissions get ErrClosed. The recommended crash-test order remains
// Close first, then CutPower bracketed by LastCommitSubmit /
// LastCommitDurable; this guards the reverse order staying safe.
func TestCloseAfterCrash(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := svc.Put("t", fmt.Sprintf("k%02d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Leave unacknowledged work in flight, then crash the array.
	for i := 0; i < 8; i++ {
		if _, err := svc.DoAsync(Op{Kind: OpAdd, Tenant: "t", Key: fmt.Sprintf("k%02d", i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var cutAt time.Duration
	for _, st := range svc.Stats() {
		if st.LastCommitSubmit > cutAt {
			cutAt = st.LastCommitSubmit
		}
	}
	sys.Array().CutPower(cutAt+time.Nanosecond, sim.NewRNG(3))

	if err := svc.Close(); err != nil {
		t.Fatalf("Close after CutPower = %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("double Close after CutPower = %v; want nil", err)
	}
	if err := svc.Put("t", "late", 1); err != ErrClosed {
		t.Fatalf("Put after crash+Close = %v; want ErrClosed", err)
	}
}
