package shard

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata")

// TestFormatPrometheusGolden pins the exposition format byte-for-byte
// against a golden file: handcrafted stats in, deterministic text out.
func TestFormatPrometheusGolden(t *testing.T) {
	stats := []ShardStats{
		{
			Shard: 0, Ops: 10, Reads: 4, Writes: 6, Commits: 3,
			BatchOccupancy: 2,
			CommitLatency: sim.Summary{
				Count: 3,
				Mean:  1500 * time.Microsecond,
				P50:   time.Millisecond,
				P99:   2 * time.Millisecond,
				Max:   2 * time.Millisecond,
			},
			QueueHighWater: 5, Rejected: 1,
			Elapsed: 10 * time.Millisecond,
			PersistStages: core.PersistStageTotals{
				ResetTracking:  250 * time.Microsecond,
				InitiateWrites: 750 * time.Microsecond,
				WaitIO:         4 * time.Millisecond,
			},
		},
		{
			Shard: 1, Ops: 7, Reads: 7,
			Elapsed: 2500 * time.Microsecond,
		},
	}
	var buf bytes.Buffer
	if err := FormatPrometheus(&buf, stats); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("FormatPrometheus output drifted from %s (rerun with -update-golden after an intentional change)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// promLineRe is the shape every non-comment exposition line must have.
var promLineRe = regexp.MustCompile(`^[a-z0-9_]+\{shard="-?\d+"\} -?[0-9.e+-]+$`)

// TestServiceFormatPrometheus runs the formatter against a live
// service and checks the output is well-formed exposition text with
// every metric present for every shard.
func TestServiceFormatPrometheus(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Put("t", "a", 5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.FormatPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := 0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if !promLineRe.Match(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
		series++
	}
	const metrics = 13
	if want := metrics * 2; series != want {
		t.Errorf("got %d series lines, want %d (%d metrics x 2 shards)", series, want, metrics)
	}
}
