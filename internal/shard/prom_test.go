package shard

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/sim"
)

// histSnap builds a deterministic histogram snapshot from samples.
func histSnap(ds ...time.Duration) obs.HistSnapshot {
	var h obs.Histogram
	for _, d := range ds {
		h.Record(d)
	}
	return h.Snapshot()
}

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata")

// TestFormatPrometheusGolden pins the exposition format byte-for-byte
// against a golden file: handcrafted stats in, deterministic text out.
func TestFormatPrometheusGolden(t *testing.T) {
	stats := []ShardStats{
		{
			Shard: 0, Ops: 10, Reads: 4, Writes: 6, Commits: 3,
			BatchOccupancy: 2,
			CommitLatency: sim.Summary{
				Count: 3,
				Mean:  1500 * time.Microsecond,
				P50:   time.Millisecond,
				P99:   2 * time.Millisecond,
				Max:   2 * time.Millisecond,
			},
			QueueHighWater: 5, Rejected: 1,
			Elapsed: 10 * time.Millisecond,
			PersistStages: core.PersistStageTotals{
				ResetTracking:  250 * time.Microsecond,
				InitiateWrites: 750 * time.Microsecond,
				WaitIO:         4 * time.Millisecond,
			},
			CommitHist:  histSnap(time.Millisecond, time.Millisecond, 2*time.Millisecond),
			PersistHist: histSnap(500*time.Microsecond, 900*time.Microsecond, time.Millisecond),
			Obs:         obs.RecorderStats{Recorded: 42, Dropped: 1, Wraps: 2, Capacity: 1024},
		},
		{
			Shard: 1, Ops: 7, Reads: 7,
			Elapsed: 2500 * time.Microsecond,
		},
	}
	var buf bytes.Buffer
	if err := FormatPrometheus(&buf, stats); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("FormatPrometheus output drifted from %s (rerun with -update-golden after an intentional change)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// Exposition line shapes: plain {shard} series (including histogram
// _sum/_count), histogram _bucket series with an le label, and the
// unlabeled service-wide obs counters.
var (
	promLineRe   = regexp.MustCompile(`^[a-z0-9_]+\{shard="-?\d+"\} -?[0-9.e+-]+$`)
	promBucketRe = regexp.MustCompile(`^[a-z0-9_]+_bucket\{shard="-?\d+",le="(\+Inf|[0-9.e+-]+)"\} \d+$`)
	promPlainRe  = regexp.MustCompile(`^[a-z0-9_]+ -?[0-9.e+-]+$`)
)

// TestServiceFormatPrometheus runs the formatter against a live
// service and checks the output is well-formed exposition text with
// every metric present for every shard.
func TestServiceFormatPrometheus(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2, Recorder: obs.NewRecorder(256)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Put("t", "a", 5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.FormatPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var series, buckets, plain int
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		switch {
		case promBucketRe.Match(line):
			buckets++
		case promLineRe.Match(line):
			series++
		case promPlainRe.Match(line):
			plain++
		default:
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	// 13 per-shard metrics plus _sum and _count for the two latency
	// histograms, times 2 shards.
	const metrics, hists, shards = 13, 2, 2
	if want := (metrics + 2*hists) * shards; series != want {
		t.Errorf("got %d series lines, want %d", series, want)
	}
	// Every histogram emits at least its +Inf bucket per shard.
	if want := hists * shards; buckets < want {
		t.Errorf("got %d bucket lines, want at least %d", buckets, want)
	}
	// The three unlabeled obs recorder counters.
	if plain != 3 {
		t.Errorf("got %d unlabeled lines, want 3 (obs counters)", plain)
	}
	for _, name := range []string{
		"memsnap_obs_events_recorded_total",
		"memsnap_shard_commit_latency_seconds_bucket",
		"memsnap_shard_persist_latency_seconds_count",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
