package shard

import (
	"time"

	"memsnap/internal/core"
	"memsnap/internal/obs"
	"memsnap/internal/sim"
)

// ShardStats is a snapshot of one shard's serving statistics. All
// durations are virtual time.
type ShardStats struct {
	Shard int
	// Ops/Reads/Writes count applied operations (writes only count
	// successfully applied, durably acknowledged mutations).
	Ops, Reads, Writes int64
	// Commits counts group commits; BatchOccupancy is the mean number
	// of write ops coalesced per commit.
	Commits        int64
	BatchOccupancy float64
	// CommitLatency summarizes per-batch latency from first apply to
	// durability (the writer-visible group-commit ack latency).
	CommitLatency sim.Summary
	// QueueHighWater is the deepest queue observed at submit time;
	// Rejected counts TryDo admissions refused with ErrBackpressure.
	QueueHighWater int
	Rejected       int64
	// Elapsed is the worker's virtual time since the service opened;
	// LastCommitSubmit/LastCommitDurable bracket the most recent
	// group commit's IO (used by crash-injection tests to cut power
	// mid-commit).
	Elapsed           time.Duration
	LastCommitSubmit  time.Duration
	LastCommitDurable time.Duration
	// PersistStages breaks the worker's cumulative Persist time into
	// the pipeline's stages (reset write tracking, initiate IO, wait
	// for durability), as of the last group commit.
	PersistStages core.PersistStageTotals
	// CommitHist is the log2-bucketed histogram of group-commit ack
	// latency (apply start to writer ack); PersistHist covers the IO
	// window (uCheckpoint submit to durable). Both are value snapshots.
	CommitHist  obs.HistSnapshot
	PersistHist obs.HistSnapshot
	// Obs snapshots the service's trace-recorder accounting (events
	// recorded / dropped / ring wraps). The recorder is service-wide,
	// so every shard row carries the same values; zero when no
	// Recorder is configured.
	Obs obs.RecorderStats
}

// Stats snapshots every shard's statistics. Safe to call while the
// service is running.
func (s *Service) Stats() []ShardStats {
	out := make([]ShardStats, 0, len(s.shards))
	recStats := s.cfg.Recorder.Stats()
	for _, sh := range s.shards {
		sh.statsMu.Lock()
		st := ShardStats{
			Shard:             sh.id,
			Ops:               sh.ops,
			Reads:             sh.reads,
			Writes:            sh.writes,
			Commits:           sh.commits,
			CommitLatency:     sh.commitLat.Summarize(),
			LastCommitSubmit:  sh.lastSubmit,
			LastCommitDurable: sh.lastDur,
			Elapsed:           sh.ctx.Clock().Now() - sh.startedAt,
			PersistStages:     sh.stages,
			CommitHist:        sh.commitHist.Snapshot(),
			PersistHist:       sh.persistHist.Snapshot(),
			Obs:               recStats,
		}
		if sh.commits > 0 {
			st.BatchOccupancy = float64(sh.batchOps) / float64(sh.commits)
		}
		sh.statsMu.Unlock()
		st.QueueHighWater = int(sh.queueHW.Load())
		st.Rejected = sh.rejected.Load()
		out = append(out, st)
	}
	return out
}

// TotalStats aggregates shard statistics into one service-wide view:
// counters sum, latency recorders merge, occupancy averages weighted
// by commits, and Elapsed is the max across shards.
func (s *Service) TotalStats() ShardStats {
	merged := sim.NewLatencyRecorder()
	var total ShardStats
	total.Shard = -1
	for _, sh := range s.shards {
		sh.statsMu.Lock()
		total.Ops += sh.ops
		total.Reads += sh.reads
		total.Writes += sh.writes
		total.Commits += sh.commits
		total.BatchOccupancy += float64(sh.batchOps)
		merged.Merge(sh.commitLat)
		if e := sh.ctx.Clock().Now() - sh.startedAt; e > total.Elapsed {
			total.Elapsed = e
		}
		if sh.lastSubmit > total.LastCommitSubmit {
			total.LastCommitSubmit = sh.lastSubmit
		}
		if sh.lastDur > total.LastCommitDurable {
			total.LastCommitDurable = sh.lastDur
		}
		total.PersistStages.ResetTracking += sh.stages.ResetTracking
		total.PersistStages.InitiateWrites += sh.stages.InitiateWrites
		total.PersistStages.WaitIO += sh.stages.WaitIO
		sh.statsMu.Unlock()
		total.CommitHist.Merge(sh.commitHist.Snapshot())
		total.PersistHist.Merge(sh.persistHist.Snapshot())
		if hw := int(sh.queueHW.Load()); hw > total.QueueHighWater {
			total.QueueHighWater = hw
		}
		total.Rejected += sh.rejected.Load()
	}
	if total.Commits > 0 {
		total.BatchOccupancy /= float64(total.Commits)
	} else {
		total.BatchOccupancy = 0
	}
	total.CommitLatency = merged.Summarize()
	total.Obs = s.cfg.Recorder.Stats()
	return total
}
