package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainPipelinedExactlyOnce is the drain-ordering regression test:
// many clients pipeline tagged ops onto shared response channels (the
// network server's usage) while Close races them. The pinned contract:
//
//   - every ACCEPTED op (DoTagged/TryDoTagged returned nil) receives
//     exactly one response, with its tag, and that response is its real
//     outcome — never ErrClosed (an admitted op is applied, not
//     retroactively rejected);
//   - every REJECTED op (non-nil return) receives no response at all;
//   - nothing is answered twice (duplicate tags on a channel fail).
func TestDrainPipelinedExactlyOnce(t *testing.T) {
	const (
		clients = 6
		perConn = 64
		depth   = 16
	)
	for round := 0; round < 8; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			sys := newSystem(t, 2)
			svc, err := New(sys, Config{Shards: 2, QueueDepth: 4, BatchSize: 4})
			if err != nil {
				t.Fatal(err)
			}

			var accepted, responded atomic.Int64
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					// One shared pipelined channel per client, like one
					// network connection.
					ch := make(chan Response, depth)
					slots := make(chan struct{}, depth)
					var ok int64
					var collect sync.WaitGroup
					collect.Add(1)
					go func() {
						defer collect.Done()
						seen := make(map[uint64]bool)
						for r := range ch {
							if seen[r.Tag] {
								t.Errorf("client %d: duplicate response for tag %d", c, r.Tag)
							}
							seen[r.Tag] = true
							if r.Err == ErrClosed {
								t.Errorf("client %d: accepted op %d rejected with ErrClosed after admission", c, r.Tag)
							}
							responded.Add(1)
							<-slots
						}
					}()
					for i := 0; i < perConn; i++ {
						op := Op{Kind: OpPut, Tenant: fmt.Sprintf("t%d", c), Key: fmt.Sprintf("k%03d", i), Value: uint64(i)}
						if i%3 == 0 {
							op.Kind = OpGet
						}
						slots <- struct{}{}
						var err error
						if i%2 == 0 {
							err = svc.DoTagged(op, uint64(i), ch)
						} else {
							err = svc.TryDoTagged(op, uint64(i), ch)
						}
						if err != nil {
							// ErrClosed or ErrBackpressure at admission:
							// no response may arrive for this op.
							<-slots
							continue
						}
						ok++
					}
					accepted.Add(ok)
					// Wait for every accepted op's response, then close
					// the channel so the collector exits. If a response
					// is lost this blocks and the test times out.
					for i := 0; i < depth; i++ {
						slots <- struct{}{}
					}
					close(ch)
					collect.Wait()
				}(c)
			}

			// Race Close against the in-flight pipelines, at a slightly
			// different point each round.
			closeErr := make(chan error, 1)
			go func() {
				for i := 0; i < round*50; i++ {
					// Busy spin to shift the close point between rounds.
					_ = i
				}
				time.Sleep(time.Duration(round) * 200 * time.Microsecond)
				closeErr <- svc.Close()
			}()

			wg.Wait()
			if err := <-closeErr; err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got, want := responded.Load(), accepted.Load(); got != want {
				t.Fatalf("responses %d != accepted %d (lost or duplicated ack)", got, want)
			}
			// The defense-in-depth sweep in Close must have found empty
			// queues: every admitted op was served by a live worker.
			for _, sh := range svc.shards {
				if n := len(sh.queue); n != 0 {
					t.Errorf("shard %d: %d requests left in queue after Close", sh.id, n)
				}
			}
		})
	}
}

// TestDrainTaggedAfterClose: tagged submissions after Close fail at
// admission with ErrClosed and deliver nothing on the channel.
func TestDrainTaggedAfterClose(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Response, 4)
	if err := svc.DoTagged(Op{Kind: OpPut, Tenant: "t", Key: "a", Value: 1}, 7, ch); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.Tag != 7 || r.Err != nil {
		t.Fatalf("tagged response = %+v, want tag 7, nil err", r)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.DoTagged(Op{Kind: OpPut, Tenant: "t", Key: "b", Value: 1}, 8, ch); err != ErrClosed {
		t.Fatalf("DoTagged after Close = %v, want ErrClosed", err)
	}
	if err := svc.TryDoTagged(Op{Kind: OpGet, Tenant: "t", Key: "a"}, 9, ch); err != ErrClosed {
		t.Fatalf("TryDoTagged after Close = %v, want ErrClosed", err)
	}
	select {
	case r := <-ch:
		t.Fatalf("unexpected response %+v after rejected submissions", r)
	default:
	}
}
