package shard

import (
	"time"

	"memsnap/internal/core"
	"memsnap/internal/objstore"
)

// Commit is one group commit's replication payload: the dirty-page
// delta of a single uCheckpoint, captured after it became locally
// durable. Seq is the manifest group-commit counter — because the
// manifest page rides in every dirty set, Seq is stored inside
// Pages[…] page 0 and is therefore durable and atomic with the data
// it numbers, on the primary and on every follower that applies the
// delta.
type Commit struct {
	Seq   uint64
	Era   uint64
	Epoch objstore.Epoch
	Pages []core.CommittedPage
	// Owned marks Pages as capture-pool pages whose ownership passes
	// to the Replicator, which must release them (core.ReleasePages)
	// once the commit is fully shipped. Commits built from plain
	// slices leave it unset.
	Owned bool
	// TraceID carries the distributed trace id of the batch's sampled
	// request (0: untraced) onto replication ship/apply spans.
	TraceID uint64
}

// Snapshot is a full copy of one shard region at a replication
// position, used for catch-up transfers when a follower's delta gap
// exceeds the retained window. Pages holds every page of the region
// in index order.
type Snapshot struct {
	Shard int
	Seq   uint64
	Era   uint64
	Epoch objstore.Epoch
	Pages []core.CommittedPage
}

// Meta is a shard's current replication position.
type Meta struct {
	Shard int
	Seq   uint64
	Era   uint64
	Sum   uint64
	Epoch objstore.Epoch
}

// Replicator receives every group commit after it is locally durable.
// The worker calls ShipCommit from its own goroutine at virtual time
// at (the local durability time) and advances its clock to the
// returned time before acknowledging the batch's writers — a
// synchronous replicator thus holds client acks until the follower
// acks, while an asynchronous one returns at unchanged. A non-nil
// error is propagated into every write response of the batch: the
// writes are durable locally but their replication could not be
// confirmed. snap reads a full region snapshot on the calling
// goroutine, serialized with the commit; it must only be invoked
// during the ShipCommit call.
type Replicator interface {
	ShipCommit(shard int, at time.Duration, c Commit, snap func() Snapshot) (time.Duration, error)
}

// snapshot copies the shard's full region. Worker-confined: all reads
// go through the worker context, and the copy cost lands on the
// worker clock.
func (sh *shard) snapshot() Snapshot {
	pages := sh.region.Len() / core.PageSize
	snap := Snapshot{
		Shard: sh.id,
		Seq:   sh.tab.man.commits,
		Era:   sh.tab.man.era,
		Epoch: sh.region.Epoch(),
		Pages: make([]core.CommittedPage, 0, pages),
	}
	for i := int64(0); i < pages; i++ {
		pg := sh.ctx.PageForRead(sh.region, i*core.PageSize)
		data := make([]byte, len(pg))
		copy(data, pg)
		snap.Pages = append(snap.Pages, core.CommittedPage{Index: i, Data: data})
	}
	sh.ctx.Clock().Advance(sh.svc.sys.Costs().MemcpyCost(int(pages) * core.PageSize))
	return snap
}

// ShardSnapshot copies one shard's full region through its worker
// queue, serialized with in-flight applies — the source of a
// replication catch-up transfer.
func (s *Service) ShardSnapshot(shard int) (*Snapshot, error) {
	resp, err := s.probe(s.shards[shard], opSnapshot)
	if err != nil {
		return nil, err
	}
	return resp.snap, nil
}

// ShardMeta reads one shard's replication position through its worker
// queue.
func (s *Service) ShardMeta(shard int) (Meta, error) {
	resp, err := s.probe(s.shards[shard], opMeta)
	if err != nil {
		return Meta{}, err
	}
	sn := resp.snap
	return Meta{Shard: sn.Shard, Seq: sn.Seq, Era: sn.Era, Sum: resp.Value, Epoch: sn.Epoch}, nil
}

// ShardDigests computes every shard's page-level region digest through
// the worker queues (see DigestRegion).
func (s *Service) ShardDigests() ([]uint64, error) {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		resp, err := s.probe(sh, opDigest)
		if err != nil {
			return nil, err
		}
		out[i] = resp.Value
	}
	return out, nil
}
