package shard

import (
	"fmt"
	"io"
	"time"

	"memsnap/internal/obs"
)

// promFloat renders a float in Prometheus exposition style: integral
// values without an exponent, everything else in Go's shortest form.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// promSeconds renders a virtual duration as seconds.
func promSeconds(d time.Duration) string { return promFloat(d.Seconds()) }

// promHeader writes one metric's # HELP / # TYPE preamble.
func promHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// FormatPrometheus writes per-shard serving statistics to w in the
// Prometheus text exposition format, one {shard="N"} series per
// metric. Counters carry the _total suffix, virtual-time latencies
// are exported in seconds. The output is deterministic for a given
// stats slice, so it can be golden-tested.
func FormatPrometheus(w io.Writer, stats []ShardStats) error {
	type metric struct {
		name, help, typ string
		value           func(st *ShardStats) string
	}
	metrics := []metric{
		{"memsnap_shard_ops_total", "Operations applied by the shard worker.", "counter",
			func(st *ShardStats) string { return fmt.Sprintf("%d", st.Ops) }},
		{"memsnap_shard_reads_total", "Read operations answered.", "counter",
			func(st *ShardStats) string { return fmt.Sprintf("%d", st.Reads) }},
		{"memsnap_shard_writes_total", "Durably acknowledged write operations.", "counter",
			func(st *ShardStats) string { return fmt.Sprintf("%d", st.Writes) }},
		{"memsnap_shard_commits_total", "Group commits (uCheckpoints) persisted.", "counter",
			func(st *ShardStats) string { return fmt.Sprintf("%d", st.Commits) }},
		{"memsnap_shard_rejected_total", "Admissions refused with backpressure.", "counter",
			func(st *ShardStats) string { return fmt.Sprintf("%d", st.Rejected) }},
		{"memsnap_shard_batch_occupancy", "Mean write ops coalesced per group commit.", "gauge",
			func(st *ShardStats) string { return promFloat(st.BatchOccupancy) }},
		{"memsnap_shard_queue_high_water", "Deepest request queue observed at submit.", "gauge",
			func(st *ShardStats) string { return fmt.Sprintf("%d", st.QueueHighWater) }},
		{"memsnap_shard_commit_latency_seconds_mean", "Mean group-commit ack latency (virtual seconds).", "gauge",
			func(st *ShardStats) string { return promSeconds(st.CommitLatency.Mean) }},
		{"memsnap_shard_commit_latency_seconds_p99", "99th percentile group-commit ack latency (virtual seconds).", "gauge",
			func(st *ShardStats) string { return promSeconds(st.CommitLatency.P99) }},
		{"memsnap_shard_elapsed_seconds", "Worker virtual time since the service opened.", "gauge",
			func(st *ShardStats) string { return promSeconds(st.Elapsed) }},
		{"memsnap_shard_persist_reset_seconds_total", "Cumulative Persist time spent resetting write tracking (virtual seconds).", "counter",
			func(st *ShardStats) string { return promSeconds(st.PersistStages.ResetTracking) }},
		{"memsnap_shard_persist_initiate_seconds_total", "Cumulative Persist time spent initiating uCheckpoint IO (virtual seconds).", "counter",
			func(st *ShardStats) string { return promSeconds(st.PersistStages.InitiateWrites) }},
		{"memsnap_shard_persist_waitio_seconds_total", "Cumulative Persist time spent waiting for durability (virtual seconds).", "counter",
			func(st *ShardStats) string { return promSeconds(st.PersistStages.WaitIO) }},
	}
	for _, m := range metrics {
		if err := promHeader(w, m.name, m.help, m.typ); err != nil {
			return err
		}
		for i := range stats {
			st := &stats[i]
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %s\n", m.name, fmt.Sprint(st.Shard), m.value(st)); err != nil {
				return err
			}
		}
	}

	// Latency histograms: proper _bucket/_sum/_count series with log2
	// le boundaries in seconds, one per shard.
	hists := []struct {
		name, help string
		snap       func(st *ShardStats) *obs.HistSnapshot
	}{
		{"memsnap_shard_commit_latency_seconds", "Group-commit ack latency histogram (virtual seconds).",
			func(st *ShardStats) *obs.HistSnapshot { return &st.CommitHist }},
		{"memsnap_shard_persist_latency_seconds", "uCheckpoint IO latency histogram, submit to durable (virtual seconds).",
			func(st *ShardStats) *obs.HistSnapshot { return &st.PersistHist }},
	}
	for _, h := range hists {
		if err := obs.WritePromHeader(w, h.name, h.help); err != nil {
			return err
		}
		for i := range stats {
			st := &stats[i]
			labels := fmt.Sprintf("shard=%q", fmt.Sprint(st.Shard))
			if err := h.snap(st).WriteProm(w, h.name, labels); err != nil {
				return err
			}
		}
	}

	// Trace-recorder accounting: the event ring is service-wide, so
	// these are unlabeled (taken from the first row's snapshot).
	if len(stats) > 0 {
		o := stats[0].Obs
		obsMetrics := []struct {
			name, help string
			value      int64
		}{
			{"memsnap_obs_events_recorded_total", "Trace events written into the ring recorder.", o.Recorded},
			{"memsnap_obs_events_dropped_total", "Trace events offered but dropped (sampling or full ring).", o.Dropped},
			{"memsnap_obs_ring_wraps_total", "Ring recorder cursor wraps (oldest events overwritten).", o.Wraps},
		}
		for _, m := range obsMetrics {
			if err := promHeader(w, m.name, m.help, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// FormatPrometheus writes the service's current per-shard statistics
// to w in the Prometheus text exposition format. Safe to call while
// the service is running.
func (s *Service) FormatPrometheus(w io.Writer) error {
	return FormatPrometheus(w, s.Stats())
}
