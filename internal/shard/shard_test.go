package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"memsnap/internal/core"
	"memsnap/internal/sim"
)

func newSystem(t *testing.T, shards int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{CPUs: shards, DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBasicOps(t *testing.T) {
	sys := newSystem(t, 8)
	svc, err := New(sys, Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if err := svc.Put("acme", "alpha", 100); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := svc.Get("acme", "alpha"); !ok || v != 100 {
		t.Fatalf("Get = %d, %v; want 100, true", v, ok)
	}
	// Tenants namespace keys: same key name, different tenant.
	if _, ok, _ := svc.Get("globex", "alpha"); ok {
		t.Fatal("tenant namespaces leak")
	}
	if v, err := svc.Add("acme", "alpha", 11); err != nil || v != 111 {
		t.Fatalf("Add = %d, %v; want 111", v, err)
	}
	if v, err := svc.Add("acme", "fresh", 7); err != nil || v != 7 {
		t.Fatalf("Add on missing key = %d, %v; want 7", v, err)
	}
	if found, err := svc.Delete("acme", "fresh"); err != nil || !found {
		t.Fatalf("Delete = %v, %v; want true", found, err)
	}
	if _, ok, _ := svc.Get("acme", "fresh"); ok {
		t.Fatal("key readable after delete")
	}
	if found, _ := svc.Delete("acme", "fresh"); found {
		t.Fatal("double delete reported found")
	}

	sum, err := svc.TotalValueSum()
	if err != nil || sum != 111 {
		t.Fatalf("TotalValueSum = %d, %v; want 111", sum, err)
	}
}

func TestTransferSemantics(t *testing.T) {
	sys := newSystem(t, 4)
	svc, err := New(sys, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Find two co-sharded keys and one on a different shard.
	var a, b, other string
	shardA := -1
	for i := 0; i < 1000 && (b == "" || other == ""); i++ {
		k := fmt.Sprintf("k%03d", i)
		switch sh := svc.ShardOf("t", k); {
		case shardA == -1:
			a, shardA = k, sh
		case sh == shardA && k != a && b == "":
			b = k
		case sh != shardA && other == "":
			other = k
		}
	}
	if b == "" || other == "" {
		t.Fatal("could not find co-sharded and cross-shard keys")
	}

	svc.Put("t", a, 50)
	if err := svc.Transfer("t", a, b, 20); err != nil {
		t.Fatal(err)
	}
	va, _, _ := svc.Get("t", a)
	vb, _, _ := svc.Get("t", b)
	if va != 30 || vb != 20 {
		t.Fatalf("after transfer: a=%d b=%d; want 30, 20", va, vb)
	}
	if err := svc.Transfer("t", a, b, 1000); err != ErrInsufficient {
		t.Fatalf("overdraft error = %v; want ErrInsufficient", err)
	}
	if err := svc.Transfer("t", a, other, 1); err != ErrCrossShard {
		t.Fatalf("cross-shard error = %v; want ErrCrossShard", err)
	}
	if sum, _ := svc.TotalValueSum(); sum != 50 {
		t.Fatalf("sum = %d; want 50 (transfers preserve it)", sum)
	}
}

func TestKeyValidation(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	long := make([]byte, MaxKeyLen)
	for i := range long {
		long[i] = 'x'
	}
	if err := svc.Put("tenant", string(long), 1); err != ErrKeyTooLong {
		t.Fatalf("long key error = %v; want ErrKeyTooLong", err)
	}
}

// TestGroupCommitCoalescing pipelines async writes into one shard and
// checks they group into fewer commits than writes.
func TestGroupCommitCoalescing(t *testing.T) {
	sys := newSystem(t, 1)
	svc, err := New(sys, Config{Shards: 1, BatchSize: 16, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	const writes = 200
	chans := make([]<-chan Response, 0, writes)
	for i := 0; i < writes; i++ {
		ch, err := svc.DoAsync(Op{Kind: OpPut, Tenant: "t", Key: fmt.Sprintf("k%04d", i), Value: 1})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := svc.TotalStats()
	if st.Writes != writes {
		t.Fatalf("writes = %d; want %d", st.Writes, writes)
	}
	if st.Commits >= writes {
		t.Fatalf("commits = %d; want group commits (< %d writes)", st.Commits, writes)
	}
	if st.BatchOccupancy <= 1 {
		t.Fatalf("batch occupancy = %.2f; want > 1", st.BatchOccupancy)
	}
	if st.CommitLatency.P99 == 0 || st.CommitLatency.P50 > st.CommitLatency.P99 {
		t.Fatalf("bad commit latency summary: %+v", st.CommitLatency)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Put("t", "late", 1); err != ErrClosed {
		t.Fatalf("post-close error = %v; want ErrClosed", err)
	}
}

// TestBackpressure fills a worker-less service's queue to verify
// deterministic admission control, then starts the workers and checks
// the queued ops drain and the rejection counter stuck.
func TestBackpressure(t *testing.T) {
	sys := newSystem(t, 1)
	svc, err := open(sys, Config{Shards: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var pending []<-chan Response
	for i := 0; i < 4; i++ {
		ch, err := svc.TryDoAsync(Op{Kind: OpPut, Tenant: "t", Key: fmt.Sprintf("k%d", i), Value: 1})
		if err != nil {
			t.Fatalf("op %d rejected with queue not full: %v", i, err)
		}
		pending = append(pending, ch)
	}
	if _, err := svc.TryDoAsync(Op{Kind: OpPut, Tenant: "t", Key: "overflow", Value: 1}); err != ErrBackpressure {
		t.Fatalf("full-queue error = %v; want ErrBackpressure", err)
	}
	svc.start()
	for _, ch := range pending {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := svc.TotalStats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d; want 1", st.Rejected)
	}
	if st.QueueHighWater < 4 {
		t.Fatalf("queue high water = %d; want >= 4", st.QueueHighWater)
	}
	svc.Close()
}

// TestConcurrentClients drives 8 shards with 4 client goroutines per
// shard (the acceptance-criteria shape) and audits every value plus
// the cross-shard sum. Run under -race this exercises the router,
// queues, group commits and stats concurrently.
func TestConcurrentClients(t *testing.T) {
	const (
		shards     = 8
		clients    = 4 * shards
		opsEach    = 40
		perClient  = 10 // keys per client
		valuePerOp = 3
	)
	sys := newSystem(t, shards)
	svc, err := New(sys, Config{Shards: shards, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%02d", c%5)
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("c%02d-k%02d", c, i%perClient)
				if i%4 == 3 {
					if _, _, err := svc.Get(tenant, key); err != nil {
						errs <- err
						return
					}
					continue
				}
				if _, err := svc.Add(tenant, key, valuePerOp); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Audit: every key holds exactly its number of increments.
	var want uint64
	for c := 0; c < clients; c++ {
		tenant := fmt.Sprintf("tenant-%02d", c%5)
		for k := 0; k < perClient; k++ {
			key := fmt.Sprintf("c%02d-k%02d", c, k)
			incs := 0
			for i := 0; i < opsEach; i++ {
				if i%perClient == k && i%4 != 3 {
					incs++
				}
			}
			v, ok, err := svc.Get(tenant, key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v != uint64(incs*valuePerOp) {
				t.Fatalf("client %d key %s = %d (found=%v); want %d", c, key, v, ok, incs*valuePerOp)
			}
			want += uint64(incs * valuePerOp)
		}
	}
	if sum, _ := svc.TotalValueSum(); sum != want {
		t.Fatalf("cross-shard sum = %d; want %d", sum, want)
	}
	st := svc.TotalStats()
	if st.Commits == 0 || st.Writes == 0 {
		t.Fatalf("no commits recorded: %+v", st)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// findPair returns two distinct keys of tenant that both route to
// shard sh.
func findPair(t *testing.T, svc *Service, tenant string, sh int) (string, string) {
	t.Helper()
	var keys []string
	for i := 0; i < 4000 && len(keys) < 2; i++ {
		k := fmt.Sprintf("bank-%04d", i)
		if svc.ShardOf(tenant, k) == sh {
			keys = append(keys, k)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("no co-sharded key pair found for shard %d", sh)
	}
	return keys[0], keys[1]
}

// TestCrashRecoveryMidCommit cuts power inside the IO window of
// unacknowledged group commits — strictly after every acknowledged
// write became durable — and verifies every shard recovers to a
// consistent epoch: manifest matches a full scan, acked writes
// survive, and the cross-shard value sum is intact.
func TestCrashRecoveryMidCommit(t *testing.T) {
	const shards = 4
	sys := newSystem(t, shards)
	cfg := Config{Shards: shards, BatchSize: 8, RegionBytes: 1 << 20}
	svc, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Seed: 20 keys of value 10 per tenant, four tenants, plus one
	// co-sharded "bank" pair per shard holding 1000 between them.
	var total uint64
	for tn := 0; tn < 4; tn++ {
		tenant := fmt.Sprintf("tenant-%d", tn)
		for k := 0; k < 20; k++ {
			if err := svc.Put(tenant, fmt.Sprintf("key-%02d", k), 10); err != nil {
				t.Fatal(err)
			}
			total += 10
		}
	}
	pairs := make([][2]string, shards)
	for sh := 0; sh < shards; sh++ {
		from, to := findPair(t, svc, "bank", sh)
		pairs[sh] = [2]string{from, to}
		if err := svc.Put("bank", from, 1000); err != nil {
			t.Fatal(err)
		}
		total += 1000
	}
	// Acked (sync) adds; every one of these must survive the crash.
	for i := 0; i < 60; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%4)
		key := fmt.Sprintf("key-%02d", i%20)
		if _, err := svc.Add(tenant, key, 5); err != nil {
			t.Fatal(err)
		}
		total += 5
	}
	// Everything acknowledged so far is durable by tSafe.
	var tSafe time.Duration
	for _, st := range svc.Stats() {
		if st.LastCommitDurable > tSafe {
			tSafe = st.LastCommitDurable
		}
	}

	// Unacknowledged tail: sum-neutral transfers inside every shard.
	// Their group commits submit after tSafe on each worker's clock;
	// the power cut lands inside this IO window.
	for round := 0; round < 10; round++ {
		for sh := 0; sh < shards; sh++ {
			if _, err := svc.DoAsync(Op{
				Kind: OpTransfer, Tenant: "bank",
				Key: pairs[sh][0], Key2: pairs[sh][1], Value: 10,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	preEpochs := make([]uint64, shards)
	for i, sh := range svc.shards {
		preEpochs[i] = uint64(sh.region.Epoch())
	}

	// Cut power one instant after the latest group-commit submission:
	// after all acked durability, inside the last commit's IO.
	cutAt := tSafe
	for _, st := range svc.Stats() {
		if st.LastCommitSubmit > cutAt {
			cutAt = st.LastCommitSubmit
		}
	}
	cutAt += time.Nanosecond
	sys.Array().CutPower(cutAt, sim.NewRNG(42))

	sys2, doneAt, err := core.Recover(core.Options{CPUs: shards, DiskBytesEach: 512 << 20}, sys.Array(), cutAt)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StartAt = doneAt
	svc2, err := New(sys2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	var recovered uint64
	torn := false
	for _, rec := range svc2.Recovery() {
		if !rec.Existing {
			t.Fatalf("shard %d not recognized as existing after recovery", rec.Shard)
		}
		if !rec.Consistent() {
			t.Fatalf("shard %d manifest/data mismatch: manifest (%d records, sum %d) vs scan (%d, %d)",
				rec.Shard, rec.Records, rec.ValueSum, rec.ScanRecords, rec.ScanSum)
		}
		if uint64(rec.Epoch) > preEpochs[rec.Shard] {
			t.Fatalf("shard %d recovered to epoch %d beyond pre-crash %d", rec.Shard, rec.Epoch, preEpochs[rec.Shard])
		}
		if uint64(rec.Epoch) < preEpochs[rec.Shard] {
			torn = true
		}
		recovered += rec.ValueSum
	}
	if !torn {
		t.Fatal("power cut tore no commit — injection missed the IO window")
	}

	// The unacked tail is sum-neutral transfers, so whatever prefix of
	// it each shard recovered, the cross-shard value sum is exact.
	if recovered != total {
		t.Fatalf("recovered cross-shard sum = %d; want %d", recovered, total)
	}
	// Every synchronously acknowledged write was durable before the
	// cut, so non-bank keys must hold their full history.
	for tn := 0; tn < 4; tn++ {
		tenant := fmt.Sprintf("tenant-%d", tn)
		for k := 0; k < 20; k++ {
			key := fmt.Sprintf("key-%02d", k)
			var adds uint64
			for i := 0; i < 60; i++ {
				if i%4 == tn && i%20 == k {
					adds += 5
				}
			}
			v, ok, err := svc2.Get(tenant, key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v != 10+adds {
				t.Fatalf("%s/%s = %d (found=%v) after recovery; want %d", tenant, key, v, ok, 10+adds)
			}
		}
	}
	// Each bank pair conserves its 1000 units whatever epoch won.
	for sh := 0; sh < shards; sh++ {
		from, _, _ := svc2.Get("bank", pairs[sh][0])
		to, _, _ := svc2.Get("bank", pairs[sh][1])
		if from+to != 1000 {
			t.Fatalf("shard %d bank pair sums to %d; want 1000", sh, from+to)
		}
	}
}

// TestFreshServiceSurvivesImmediateCrash formats a service and cuts
// power before any client write; recovery must find initialized,
// empty shards.
func TestFreshServiceSurvivesImmediateCrash(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2, RegionBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	at := svc.EndTime()
	sys.Array().CutPower(at, sim.NewRNG(7))

	sys2, doneAt, err := core.Recover(core.Options{CPUs: 2, DiskBytesEach: 512 << 20}, sys.Array(), at)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := New(sys2, Config{Shards: 2, RegionBytes: 1 << 20, StartAt: doneAt})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	for _, rec := range svc2.Recovery() {
		if !rec.Existing || rec.Records != 0 || !rec.Consistent() {
			t.Fatalf("bad fresh recovery: %+v", rec)
		}
	}
}

// TestShardCountMismatch rejects reopening with a different shard
// count (resharding is unsupported).
func TestShardCountMismatch(t *testing.T) {
	sys := newSystem(t, 4)
	svc, err := New(sys, Config{Shards: 4, RegionBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := New(sys, Config{Shards: 2, RegionBytes: 1 << 20}); err == nil {
		t.Fatal("reopen with different shard count succeeded")
	}
}

// TestShardFull exhausts a tiny shard's slot table.
func TestShardFull(t *testing.T) {
	sys := newSystem(t, 1)
	// 3 pages: 1 manifest + 2 slot pages = 128 slots, 96 usable at
	// the 3/4 occupancy cap.
	svc, err := New(sys, Config{Shards: 1, RegionBytes: 3 * core.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var full bool
	for i := 0; i < 200; i++ {
		err := svc.Put("t", fmt.Sprintf("key-%03d", i), 1)
		if err == ErrShardFull {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("tiny shard never reported ErrShardFull")
	}
	// Existing keys still readable and writable at capacity.
	if v, ok, _ := svc.Get("t", "key-000"); !ok || v != 1 {
		t.Fatal("reads broken at capacity")
	}
	if err := svc.Put("t", "key-000", 9); err != nil {
		t.Fatalf("overwrite at capacity failed: %v", err)
	}
}

// TestCommitInterval exercises the linger path.
func TestCommitInterval(t *testing.T) {
	sys := newSystem(t, 2)
	svc, err := New(sys, Config{Shards: 2, BatchSize: 32, CommitInterval: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 50; i++ {
		if err := svc.Put("t", fmt.Sprintf("k%02d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if v, ok, _ := svc.Get("t", fmt.Sprintf("k%02d", i)); !ok || v != uint64(i) {
			t.Fatalf("k%02d = %d (found=%v)", i, v, ok)
		}
	}
}
