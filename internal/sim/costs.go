package sim

import "time"

// CostModel holds the calibrated virtual-time cost of every primitive
// operation in the simulation. The defaults are calibrated so that the
// direct-IO column of the paper's Table 6 is reproduced by the disk
// model (17 us for a 4 KiB write through 44 us for 64 KiB on the
// simulated Intel 900P) and so that the MemSnap / fsync breakdowns in
// Tables 5-10 land in the paper's regime.
//
// A CostModel is plain data: copy it, tweak fields, and pass it down.
// All components receive the model by pointer at construction time so a
// whole experiment shares one set of constants.
type CostModel struct {
	// --- CPU / VM primitives ---

	// SyscallEntry is the fixed cost of entering and leaving the
	// kernel (trap, register save, return).
	SyscallEntry time.Duration

	// MinorFault is the cost of a minor (no page copy, no disk IO)
	// write fault: trap, vm_fault lookup, dirty-set append, PTE
	// update, return. This is MemSnap's tracking fault.
	MinorFault time.Duration

	// COWFault is the cost of a copy-on-write fault: MinorFault plus
	// allocating a frame and copying 4 KiB.
	COWFault time.Duration

	// PTEWrite is the cost of updating one page-table entry through a
	// stored reference (MemSnap's trace buffer path).
	PTEWrite time.Duration

	// PageWalk is the cost of walking the page table from the root to
	// one leaf PTE (the per-page strategy in Figure 1).
	PageWalk time.Duration

	// PageTableScanPerEntry is the cost of visiting one PTE slot while
	// linearly scanning a mapping's page tables (the baseline strategy
	// in Figure 1). Scans visit every slot, present or not.
	PageTableScanPerEntry time.Duration

	// TLBShootdownPerPage is the cost of invalidating a single page on
	// all CPUs (IPI + INVLPG).
	TLBShootdownPerPage time.Duration

	// TLBFullFlush is the cost of invalidating an entire TLB on all
	// CPUs.
	TLBFullFlush time.Duration

	// TLBFlushThreshold is the dirty-set size (in pages) above which
	// MemSnap issues a full flush instead of per-page shootdowns.
	TLBFlushThreshold int

	// MemcpyPerKiB is the cost of copying one KiB of memory.
	MemcpyPerKiB time.Duration

	// DiffPerKiB is the cost of byte-wise scanning one KiB of memory on
	// the replication path: pre-image comparison when a captured page is
	// diffed, the XOR/RLE encoding pass, and the follower's pre-image
	// hash validation. Scans are read-mostly and SIMD-friendly, so the
	// default is cheaper than a copy.
	DiffPerKiB time.Duration

	// FrameAlloc is the cost of allocating one physical frame.
	FrameAlloc time.Duration

	// ThreadStop is the cost of stopping one running thread and
	// waiting for it to park (used by Aurora's system shadowing).
	ThreadStop time.Duration

	// ThreadResume is the cost of resuming one parked thread.
	ThreadResume time.Duration

	// --- Disk (per device in the stripe) ---

	// DiskBaseLatency is the fixed cost of one IO command
	// (submission, flash program setup, completion interrupt).
	// Per-byte transfer cost is the package constant
	// diskPerBytePicos; see TransferCost.
	DiskBaseLatency time.Duration

	// DiskSectorSize is the atomic write unit in bytes. Power cuts
	// never tear a sector.
	DiskSectorSize int

	// StripeSize is the striping unit of the simulated two-disk
	// array in bytes.
	StripeSize int

	// --- Replication link ---

	// LinkBaseLatency is the fixed one-way cost of a message on the
	// simulated replication link (propagation plus NIC and protocol
	// processing). Per-byte transfer cost is the package constant
	// linkPerBytePicos; see LinkTransferCost.
	LinkBaseLatency time.Duration

	// --- File system / buffer cache (baselines) ---

	// VFSLookup is the per-call overhead of the VFS layer (vnode
	// locks, rangelocks, path to the FS-specific code).
	VFSLookup time.Duration

	// BufferCacheLookup is the cost of finding one block in the
	// buffer cache.
	BufferCacheLookup time.Duration

	// BufferCacheInsert is the cost of inserting/dirtying one block.
	BufferCacheInsert time.Duration

	// JournalCommit is the fixed cost of committing a journal
	// transaction (write + barrier), excluding the data transfer.
	JournalCommit time.Duration

	// FFSMetaPerBlock is the metadata update cost FFS pays per dirty
	// block flushed from a random write pattern (cylinder-group and
	// indirect-block read-modify-write cycles). Sequential extents
	// amortize this away.
	FFSMetaPerBlock time.Duration

	// FFSMetaBatch is the number of random blocks after which FFS's
	// journal begins batching metadata updates, dropping the per-block
	// cost to FFSMetaPerBlockBatched.
	FFSMetaBatch           int
	FFSMetaPerBlockBatched time.Duration

	// ZFSTxgFixed is the fixed cost of a ZFS transaction-group commit
	// (uberblock ring updates and barriers).
	ZFSTxgFixed time.Duration

	// ZFSIndirectPerBlock is the COW indirect-chain rewrite cost ZFS
	// pays per random dirty block before tree-level amortization.
	ZFSIndirectPerBlock time.Duration

	// ZFSIndirectBatch mirrors FFSMetaBatch for the COW tree.
	ZFSIndirectBatch           int
	ZFSIndirectPerBlockBatched time.Duration

	// --- MemSnap persist path ---

	// PersistFixed is the fixed CPU cost of msnap_persist before any
	// per-page work (argument validation, thread dirty-list lookup).
	PersistFixed time.Duration

	// PersistInitiateIO is the CPU cost of building and submitting the
	// scatter/gather IO for a uCheckpoint (the "Initiating Writes" row
	// of Table 5).
	PersistInitiateIO time.Duration

	// PersistPerPage is the per-page CPU cost of adding one dirty page
	// to the scatter/gather list.
	PersistPerPage time.Duration

	// KVOpCost is the userspace CPU a key-value engine spends per
	// operation regardless of persistence design (memtable search,
	// comparators, block handling) — the "Tx Memory" work of Table 1.
	KVOpCost time.Duration

	// MmapAccessPenalty is the extra per-row-op cost of operating on
	// directly mapped table data instead of a managed buffer cache:
	// page-fault storms, TLB pressure and lost prefetch (the
	// historical observation the paper corroborates via its ffs-mmap
	// variants, citing "Are you sure you want to use mmap...").
	MmapAccessPenalty time.Duration

	// PGExecutorPerRowOp is the upper-layer CPU cost PostgreSQL pays
	// per row operation (parser/planner amortization, executor nodes,
	// index lookups, tuple locking) — the reason storage-path gains
	// move end-to-end TPC-C throughput by only a few percent (§7.3).
	PGExecutorPerRowOp time.Duration

	// --- Aurora (baseline SLS) ---

	// AuroraStopThreadsFixed is the serialization cost of stopping all
	// threads for system shadowing ("Waiting for Calls", Table 10).
	AuroraStopThreadsFixed time.Duration

	// AuroraShadowPerGiB is the cost of applying COW shadowing,
	// proportional to the mapping size (not the dirty set).
	AuroraShadowPerGiB time.Duration

	// AuroraCollapsePerGiB is the cost of collapsing the shadow object
	// back into the base object after the IO completes.
	AuroraCollapsePerGiB time.Duration

	// AuroraAppCheckpointFixed is the extra fixed cost of a full
	// application checkpoint (OS state serialization, address-space
	// wide protection) over a region checkpoint.
	AuroraAppCheckpointFixed time.Duration

	// AuroraAppCheckpointPerGiB is the per-GiB cost of protecting and
	// scanning the entire address space for application checkpoints.
	AuroraAppCheckpointPerGiB time.Duration
}

// DefaultCosts returns the calibrated cost model used by all paper
// experiments. See DESIGN.md for the calibration targets.
func DefaultCosts() *CostModel {
	return &CostModel{
		SyscallEntry:          500 * time.Nanosecond,
		MinorFault:            1300 * time.Nanosecond,
		COWFault:              2600 * time.Nanosecond,
		PTEWrite:              60 * time.Nanosecond,
		PageWalk:              350 * time.Nanosecond,
		PageTableScanPerEntry: 4 * time.Nanosecond,
		TLBShootdownPerPage:   220 * time.Nanosecond,
		TLBFullFlush:          2 * time.Microsecond,
		TLBFlushThreshold:     32,
		MemcpyPerKiB:          45 * time.Nanosecond,
		DiffPerKiB:            30 * time.Nanosecond,
		FrameAlloc:            180 * time.Nanosecond,
		ThreadStop:            2200 * time.Nanosecond,
		ThreadResume:          900 * time.Nanosecond,

		DiskBaseLatency: 15500 * time.Nanosecond,
		DiskSectorSize:  512,
		StripeSize:      64 << 10,

		LinkBaseLatency: 20 * time.Microsecond,

		VFSLookup:         900 * time.Nanosecond,
		BufferCacheLookup: 350 * time.Nanosecond,
		BufferCacheInsert: 600 * time.Nanosecond,
		JournalCommit:     38 * time.Microsecond,

		FFSMetaPerBlock:        104 * time.Microsecond,
		FFSMetaBatch:           128,
		FFSMetaPerBlockBatched: 16 * time.Microsecond,

		ZFSTxgFixed:                42 * time.Microsecond,
		ZFSIndirectPerBlock:        168 * time.Microsecond,
		ZFSIndirectBatch:           96,
		ZFSIndirectPerBlockBatched: 11 * time.Microsecond,

		KVOpCost:           40 * time.Microsecond,
		MmapAccessPenalty:  22 * time.Microsecond,
		PGExecutorPerRowOp: 180 * time.Microsecond,

		PersistFixed:      1800 * time.Nanosecond,
		PersistInitiateIO: 5200 * time.Nanosecond,
		PersistPerPage:    80 * time.Nanosecond,

		AuroraStopThreadsFixed:    26700 * time.Nanosecond,
		AuroraShadowPerGiB:        80 * time.Microsecond,
		AuroraCollapsePerGiB:      92 * time.Microsecond,
		AuroraAppCheckpointFixed:  400 * time.Microsecond,
		AuroraAppCheckpointPerGiB: 2500 * time.Microsecond,
	}
}

// diskPerBytePicos is the per-byte transfer cost in picoseconds.
// 0.45 ns/B cannot be expressed as a time.Duration, so transfer costs
// use integer math at picosecond resolution.
const diskPerBytePicos = 450

// TransferCost returns the transfer time for n bytes on one device.
func (m *CostModel) TransferCost(n int) time.Duration {
	return time.Duration(int64(n) * diskPerBytePicos / 1000)
}

// IOCost returns the full cost of a single contiguous IO of n bytes on
// one device: base latency plus transfer.
func (m *CostModel) IOCost(n int) time.Duration {
	return m.DiskBaseLatency + m.TransferCost(n)
}

// MemcpyCost returns the cost of copying n bytes.
func (m *CostModel) MemcpyCost(n int) time.Duration {
	return time.Duration(int64(n) * int64(m.MemcpyPerKiB) / 1024)
}

// DiffCost returns the cost of byte-wise scanning n bytes (pre-image
// diffing, XOR/RLE encoding, hash validation).
func (m *CostModel) DiffCost(n int) time.Duration {
	return time.Duration(int64(n) * int64(m.DiffPerKiB) / 1024)
}

// linkPerBytePicos is the replication link's per-byte transfer cost in
// picoseconds: 0.8 ns/B, roughly a dedicated 10 GbE pipe. Like the
// disk constant it lives outside CostModel because sub-nanosecond
// rates cannot be expressed as a time.Duration.
const linkPerBytePicos = 800

// LinkTransferCost returns the serialization time of n bytes on the
// replication link (bandwidth term only; see LinkCost).
func (m *CostModel) LinkTransferCost(n int) time.Duration {
	return time.Duration(int64(n) * linkPerBytePicos / 1000)
}

// LinkCost returns the full one-way cost of an n-byte message on the
// replication link: base latency plus transfer.
func (m *CostModel) LinkCost(n int) time.Duration {
	return m.LinkBaseLatency + m.LinkTransferCost(n)
}
