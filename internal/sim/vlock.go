package sim

import (
	"sync"
	"time"
)

// VLock is a mutex that is also visible in virtual time: a thread
// acquiring it advances its clock to the moment the previous holder
// released it, so lock contention shows up in measured virtual
// latency (e.g. RocksDB threads queueing on a hot skip-list node, or
// Aurora serializing checkpoints).
type VLock struct {
	mu     sync.Mutex
	freeAt time.Duration
}

// Lock acquires the lock and advances clk past the previous holder's
// release time. clk may be nil for setup-time uses.
func (l *VLock) Lock(clk *Clock) {
	l.mu.Lock()
	if clk != nil {
		clk.AdvanceTo(l.freeAt)
	}
}

// Unlock records the release time from clk and releases the lock.
func (l *VLock) Unlock(clk *Clock) {
	if clk != nil && clk.Now() > l.freeAt {
		l.freeAt = clk.Now()
	}
	l.mu.Unlock()
}
