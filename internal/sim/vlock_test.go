package sim

import (
	"sync"
	"testing"
	"time"
)

func TestVLockSerializesVirtualTime(t *testing.T) {
	var l VLock
	a, b := NewClock(), NewClock()

	l.Lock(a)
	a.Advance(100 * time.Microsecond) // holder does work
	l.Unlock(a)

	l.Lock(b) // b arrives at virtual time 0
	if b.Now() < 100*time.Microsecond {
		t.Fatalf("waiter not advanced past holder's release: %v", b.Now())
	}
	l.Unlock(b)
}

func TestVLockNoBackwardsTime(t *testing.T) {
	var l VLock
	late := NewClockAt(time.Millisecond)
	l.Lock(late)
	l.Unlock(late)
	early := NewClockAt(2 * time.Millisecond)
	l.Lock(early)
	if early.Now() != 2*time.Millisecond {
		t.Fatalf("late arriver moved backwards: %v", early.Now())
	}
	l.Unlock(early)
	// freeAt must now reflect the later time.
	next := NewClock()
	l.Lock(next)
	if next.Now() != 2*time.Millisecond {
		t.Fatalf("freeAt = %v", next.Now())
	}
	l.Unlock(next)
}

func TestVLockNilClock(t *testing.T) {
	var l VLock
	l.Lock(nil)
	l.Unlock(nil)
}

func TestVLockConcurrent(t *testing.T) {
	var l VLock
	var wg sync.WaitGroup
	clocks := make([]*Clock, 8)
	for i := range clocks {
		clocks[i] = NewClock()
		wg.Add(1)
		go func(c *Clock) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Lock(c)
				c.Advance(time.Microsecond)
				l.Unlock(c)
			}
		}(clocks[i])
	}
	wg.Wait()
	// Total virtual work was 800 us serialized; the max clock must be
	// at least that.
	var max time.Duration
	for _, c := range clocks {
		if c.Now() > max {
			max = c.Now()
		}
	}
	if max < 800*time.Microsecond {
		t.Fatalf("serialized virtual time %v < 800us", max)
	}
}
