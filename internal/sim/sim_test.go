package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock not at zero: %v", c.Now())
	}
	c.Advance(5 * time.Microsecond)
	if got := c.Now(); got != 5*time.Microsecond {
		t.Fatalf("Advance: got %v", got)
	}
	c.Advance(-time.Second) // negative ignored
	if got := c.Now(); got != 5*time.Microsecond {
		t.Fatalf("negative Advance moved clock: %v", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClockAt(10 * time.Microsecond)
	c.AdvanceTo(4 * time.Microsecond) // earlier: no-op
	if got := c.Now(); got != 10*time.Microsecond {
		t.Fatalf("AdvanceTo moved clock backwards: %v", got)
	}
	c.AdvanceTo(25 * time.Microsecond)
	if got := c.Now(); got != 25*time.Microsecond {
		t.Fatalf("AdvanceTo: got %v", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		c := NewClock()
		prev := c.Now()
		for _, d := range deltas {
			c.Advance(time.Duration(d))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopWatch(t *testing.T) {
	c := NewClock()
	w := Watch(c)
	c.Advance(7 * time.Millisecond)
	if got := w.Elapsed(); got != 7*time.Millisecond {
		t.Fatalf("Elapsed: got %v", got)
	}
}

func TestDefaultCostsCalibration(t *testing.T) {
	m := DefaultCosts()
	// Table 6 direct-IO column: the calibration targets.
	cases := []struct {
		bytes  int
		lo, hi time.Duration
	}{
		{4 << 10, 16 * time.Microsecond, 18 * time.Microsecond},
		{8 << 10, 17 * time.Microsecond, 21 * time.Microsecond},
		{16 << 10, 21 * time.Microsecond, 25 * time.Microsecond},
		{32 << 10, 28 * time.Microsecond, 33 * time.Microsecond},
		{64 << 10, 42 * time.Microsecond, 47 * time.Microsecond},
	}
	for _, tc := range cases {
		got := m.IOCost(tc.bytes)
		if got < tc.lo || got > tc.hi {
			t.Errorf("IOCost(%d) = %v, want in [%v, %v]", tc.bytes, got, tc.lo, tc.hi)
		}
	}
}

func TestMemcpyCost(t *testing.T) {
	m := DefaultCosts()
	if got := m.MemcpyCost(4096); got != 4*m.MemcpyPerKiB {
		t.Fatalf("MemcpyCost(4096) = %v, want %v", got, 4*m.MemcpyPerKiB)
	}
	if got := m.MemcpyCost(0); got != 0 {
		t.Fatalf("MemcpyCost(0) = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(7)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestParetoSkew(t *testing.T) {
	r := NewRNG(3)
	const n = 100000
	var below int
	for i := 0; i < n; i++ {
		if r.Pareto(10, 0.2, 1000) < 100 {
			below++
		}
	}
	// A Pareto distribution concentrates mass at small values.
	if frac := float64(below) / n; frac < 0.9 {
		t.Fatalf("Pareto not skewed: %.2f below 100", frac)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	z := NewZipf(10000, 0.99)
	r := NewRNG(5)
	counts := make(map[int64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next(r)
		if v < 0 || v >= 10000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Key 0 should be by far the most popular.
	if counts[0] < n/50 {
		t.Fatalf("Zipf head too cold: %d hits for key 0", counts[0])
	}
}

func TestZetaTailApproximation(t *testing.T) {
	// For n below the cap, zeta is exact; sanity check monotonicity
	// and the analytic bound zeta(n,0) == n.
	if got := zeta(100, 0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("zeta(100,0) = %v", got)
	}
	if zeta(1000, 0.5) <= zeta(100, 0.5) {
		t.Fatal("zeta not monotone in n")
	}
}

func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Mean != 50500*time.Nanosecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P99 != 99*time.Microsecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Microsecond {
		t.Fatalf("Max = %v", s.Max)
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	a, b := NewLatencyRecorder(), NewLatencyRecorder()
	a.Record(time.Microsecond)
	b.Record(3 * time.Microsecond)
	a.Merge(b)
	if a.Count() != 2 || a.Mean() != 2*time.Microsecond {
		t.Fatalf("merge: count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Percentile(99) != 0 || r.Max() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	if s := r.Summarize(); s.Count != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		for _, v := range raw {
			r.Record(time.Duration(v))
		}
		p50, p99 := r.Percentile(50), r.Percentile(99)
		return p50 <= p99 && p99 <= r.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeBuckets(t *testing.T) {
	b := NewTimeBuckets()
	b.Add("io", 30*time.Microsecond)
	b.Add("cpu", 10*time.Microsecond)
	b.Add("io", 10*time.Microsecond)
	if b.Get("io") != 40*time.Microsecond {
		t.Fatalf("io bucket = %v", b.Get("io"))
	}
	if b.Total() != 50*time.Microsecond {
		t.Fatalf("total = %v", b.Total())
	}
	if f := b.Fraction("io"); math.Abs(f-0.8) > 1e-9 {
		t.Fatalf("fraction = %v", f)
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "cpu" || names[1] != "io" {
		t.Fatalf("names = %v", names)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
}
