package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64 seeded xoshiro256**). Every workload generator in this
// repository takes an explicit *RNG so experiments are reproducible
// bit-for-bit from a seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements addressed by swap in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Pareto returns a sample from a generalized Pareto distribution with
// the given scale and shape, truncated to [0, max). MixGraph uses a
// Pareto key-popularity distribution for writes.
func (r *RNG) Pareto(scale, shape float64, max int64) int64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	var x float64
	if shape == 0 {
		x = -scale * math.Log(u)
	} else {
		x = scale * (math.Pow(u, -shape) - 1) / shape
	}
	v := int64(x)
	if v < 0 {
		v = 0
	}
	if max > 0 && v >= max {
		v = v % max
	}
	return v
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent
// theta (0 < theta < 1 typical for YCSB-style workloads). It uses the
// rejection-inversion-free approximation adequate for workload
// generation.
type Zipf struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf precomputes a Zipf sampler over [0, n).
func NewZipf(n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	// Cap the exact summation for huge n; the tail contributes little
	// and workload fidelity does not require more.
	const cap = 1 << 20
	m := n
	if m > cap {
		m = cap
	}
	var sum float64
	for i := int64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// Integral approximation of the remaining tail.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next returns the next Zipf sample in [0, z.n).
func (z *Zipf) Next(r *RNG) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}
