// Package sim provides the simulation substrate shared by every other
// package in this repository: virtual clocks, a calibrated cost model,
// deterministic random number generation, and latency statistics.
//
// MemSnap is a kernel system whose evaluation reports CPU time and IO
// latency measured on specific hardware. This reproduction replaces
// wall-clock time with virtual time: every simulated component charges
// its cost (a Duration from the CostModel) to the Clock of the thread
// performing the operation. Virtual time makes every experiment
// deterministic and machine independent while preserving the relative
// costs the paper's tables report.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock owned by one simulated thread. It only moves
// forward. Clocks are cheap; create one per worker. A Clock must not be
// shared between goroutines without external synchronization — the one
// exception is Now/AdvanceTo via the atomic value, which supports the
// device-arbitration pattern used by disk queues.
type Clock struct {
	now atomic.Int64 // virtual nanoseconds since simulation start
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// NewClockAt returns a clock positioned at the given virtual time.
func NewClockAt(t time.Duration) *Clock {
	c := &Clock{}
	c.now.Store(int64(t))
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored so call sites can pass computed deltas
// without guarding.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time. It returns the resulting time. Used when an operation completes
// at an absolute simulated instant (e.g. an IO completion computed by a
// device queue).
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// String implements fmt.Stringer.
func (c *Clock) String() string {
	return fmt.Sprintf("vclock(%v)", c.Now())
}

// StopWatch measures a span of virtual time on a clock.
type StopWatch struct {
	clock *Clock
	start time.Duration
}

// Watch starts a stopwatch on c.
func Watch(c *Clock) StopWatch { return StopWatch{clock: c, start: c.Now()} }

// Elapsed returns the virtual time since the stopwatch started.
func (w StopWatch) Elapsed() time.Duration { return w.clock.Now() - w.start }
