package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder collects latency samples and reports summary
// statistics. It is safe for concurrent use; workers typically record
// into per-thread recorders and Merge them at the end, but a single
// shared recorder is also fine for low-frequency events.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	max     time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.sum += d
	if d > r.max {
		r.max = d
	}
	r.mu.Unlock()
}

// Merge folds other's samples into r.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	other.mu.Lock()
	samples := append([]time.Duration(nil), other.samples...)
	other.mu.Unlock()
	r.mu.Lock()
	for _, d := range samples {
		r.samples = append(r.samples, d)
		r.sum += d
		if d > r.max {
			r.max = d
		}
	}
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the average sample, or zero if empty.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Max returns the largest sample.
func (r *LatencyRecorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Total returns the sum of all samples.
func (r *LatencyRecorder) Total() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on a sorted copy. Returns zero if empty.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// Summary is a snapshot of a recorder's statistics.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
	Total time.Duration
}

// Summarize computes all statistics in one pass over a single sorted
// copy.
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.samples)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		idx := int(p/100*float64(n)+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return sorted[idx]
	}
	return Summary{
		Count: n,
		Mean:  r.sum / time.Duration(n),
		P50:   rank(50),
		P99:   rank(99),
		Max:   r.max,
		Total: r.sum,
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v", s.Count, s.Mean, s.P50, s.P99, s.Max)
}

// Counter is a concurrency-safe monotonically increasing counter used
// for operation and byte accounting throughout the simulation.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TimeBuckets accumulates virtual CPU time into named buckets — the
// mechanism behind the paper's CPU-breakdown tables (Tables 1 and 8).
type TimeBuckets struct {
	mu      sync.Mutex
	buckets map[string]time.Duration
}

// NewTimeBuckets returns an empty accumulator.
func NewTimeBuckets() *TimeBuckets {
	return &TimeBuckets{buckets: make(map[string]time.Duration)}
}

// Add charges d to the named bucket.
func (t *TimeBuckets) Add(name string, d time.Duration) {
	t.mu.Lock()
	t.buckets[name] += d
	t.mu.Unlock()
}

// Get returns the accumulated time for name.
func (t *TimeBuckets) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buckets[name]
}

// Total returns the sum across all buckets.
func (t *TimeBuckets) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, d := range t.buckets {
		sum += d
	}
	return sum
}

// Names returns the bucket names sorted alphabetically.
func (t *TimeBuckets) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.buckets))
	for name := range t.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Fraction returns the share of the total time spent in name, in
// [0, 1]. Returns zero when the accumulator is empty.
func (t *TimeBuckets) Fraction(name string) float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.Get(name)) / float64(total)
}
