package memsnap_test

// Cross-module integration tests: full stacks (database -> MemSnap
// core -> VM -> object store -> disk) exercised end to end, including
// torn-power recovery chains that cross several subsystems.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"memsnap"
	"memsnap/internal/core"
	"memsnap/internal/litedb"
	"memsnap/internal/rockskv"
	"memsnap/internal/shard"
	"memsnap/internal/sim"
	"memsnap/internal/workload"
)

// TestIntegrationRepeatedCrashCycles survives several consecutive
// crash/recover cycles with data accumulating across lifetimes.
func TestIntegrationRepeatedCrashCycles(t *testing.T) {
	store, err := memsnap.NewStore(memsnap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	arr := store.Array()
	var at time.Duration

	expected := map[int64]byte{}
	for cycle := 0; cycle < 5; cycle++ {
		s2, doneAt, err := memsnap.RecoverStore(memsnap.Config{}, arr, at)
		if cycle == 0 {
			s2 = store
			doneAt = 0
		} else if err != nil {
			t.Fatalf("cycle %d: recover: %v", cycle, err)
		}
		proc := s2.NewProcess()
		ctx := proc.NewContext(cycle)
		ctx.Clock().AdvanceTo(doneAt)
		region, err := proc.Open(ctx, "cycles", 4<<20)
		if err != nil {
			t.Fatal(err)
		}

		// Verify all previously committed pages.
		buf := make([]byte, 1)
		for page, val := range expected {
			ctx.ReadAt(region, page*memsnap.PageSize, buf)
			if buf[0] != val {
				t.Fatalf("cycle %d: page %d = %d, want %d", cycle, page, buf[0], val)
			}
		}

		// Write a few new pages and persist.
		for i := 0; i < 10; i++ {
			page := int64(cycle*10 + i)
			val := byte(cycle*16 + i + 1)
			ctx.WriteAt(region, page*memsnap.PageSize, []byte{val})
			expected[page] = val
		}
		if _, err := ctx.Persist(region, memsnap.Sync); err != nil {
			t.Fatal(err)
		}

		// An unpersisted write that must vanish.
		ctx.WriteAt(region, 1000*memsnap.PageSize, []byte{0xFF})

		at = ctx.Clock().Now()
		arr.CutPower(at, sim.NewRNG(uint64(cycle)))
	}
}

// TestIntegrationLitedbOnSharedStore runs two independent databases
// in the same MemSnap store, crashes, and recovers both.
func TestIntegrationLitedbOnSharedStore(t *testing.T) {
	sys, err := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.NewProcess()
	ctxA := proc.NewContext(0)
	ctxB := proc.NewContext(1)

	dbA, err := litedb.OpenMemSnap(proc, ctxA, "users.db", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := litedb.OpenMemSnap(proc, ctxB, "orders.db", 32<<20)
	if err != nil {
		t.Fatal(err)
	}

	txA := dbA.Begin()
	txA.CreateTable("t")
	for i := 0; i < 100; i++ {
		txA.Put("t", workload.Key16(int64(i)), []byte(fmt.Sprintf("user-%d", i)))
	}
	txA.Commit()

	txB := dbB.Begin()
	txB.CreateTable("t")
	for i := 0; i < 100; i++ {
		txB.Put("t", workload.Key16(int64(i)), []byte(fmt.Sprintf("order-%d", i)))
	}
	txB.Commit()

	at := ctxA.Clock().Now()
	if ctxB.Clock().Now() > at {
		at = ctxB.Clock().Now()
	}
	sys.Array().CutPower(at, sim.NewRNG(11))

	sys2, doneAt, err := core.Recover(core.Options{DiskBytesEach: 512 << 20}, sys.Array(), at)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := sys2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(doneAt)

	dbA2, err := litedb.OpenMemSnap(proc2, ctx2, "users.db", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx3 := proc2.NewContext(1)
	dbB2, err := litedb.OpenMemSnap(proc2, ctx3, "orders.db", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	tx := dbA2.Begin()
	v, ok, _ := tx.Get("t", workload.Key16(42))
	tx.Commit()
	if !ok || string(v) != "user-42" {
		t.Fatalf("users.db lost data: %q ok=%v", v, ok)
	}
	tx = dbB2.Begin()
	v, ok, _ = tx.Get("t", workload.Key16(42))
	tx.Commit()
	if !ok || string(v) != "order-42" {
		t.Fatalf("orders.db lost data: %q ok=%v", v, ok)
	}
}

// TestIntegrationKVAndRegionCoexist mixes a rockskv store and a raw
// region in one system; persists of one never disturb the other.
func TestIntegrationKVAndRegionCoexist(t *testing.T) {
	sys, err := core.NewSystem(core.Options{DiskBytesEach: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.NewProcess()
	kvCtx := proc.NewContext(0)
	rawCtx := proc.NewContext(1)

	db, err := rockskv.NewMemSnap(proc, kvCtx, "memtable", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := proc.Open(rawCtx, "raw", 4<<20)
	if err != nil {
		t.Fatal(err)
	}

	s := db.NewSession(2)
	for i := 0; i < 50; i++ {
		if err := s.Put(workload.Key16(int64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		rawCtx.WriteAt(raw, int64(i%64)*memsnap.PageSize, []byte{byte(i)})
	}
	// The raw region's dirty set belongs to rawCtx only.
	if rawCtx.DirtyPages() == 0 {
		t.Fatal("raw region writes not tracked")
	}
	if _, err := rawCtx.Persist(raw, core.MSSync); err != nil {
		t.Fatal(err)
	}
	// KV data is all there.
	for i := 0; i < 50; i++ {
		v, ok := s.Get(workload.Key16(int64(i)))
		if !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("kv key %d lost", i)
		}
	}
}

// shardPair returns two distinct keys that both route to shard sh.
func shardPair(svc *shard.Service, tenant string, sh int) [2]string {
	var pair [2]string
	n := 0
	for i := 0; n < 2; i++ {
		key := fmt.Sprintf("acct-%04d", i)
		if svc.ShardOf(tenant, key) == sh {
			pair[n] = key
			n++
		}
	}
	return pair
}

// TestIntegrationShardServicePowerCut runs the sharded KV service on
// the public store API, cuts power while unacknowledged group commits
// are mid-flight, and checks the full recovery chain: every shard
// reopens at a durable epoch whose manifest matches its data, every
// acknowledged write survives, and the cross-shard value sum is exact
// because in-flight transfers were sum-neutral.
func TestIntegrationShardServicePowerCut(t *testing.T) {
	const shards = 8
	cfg := memsnap.Config{CPUs: shards, DiskBytesEach: 512 << 20}
	store, err := memsnap.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := shard.New(store, shard.Config{Shards: shards, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Acknowledged phase: concurrent clients accumulate counters.
	const clients, opsPer, delta = 2 * shards, 25, 3
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tn-%d", c%4)
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k-%03d", (c*11+i)%48)
				if _, err := svc.Add(tenant, key, delta); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("client op failed during acknowledged phase")
	}

	// One funded account pair per shard, also acknowledged.
	var pairs [shards][2]string
	for sh := 0; sh < shards; sh++ {
		pairs[sh] = shardPair(svc, "bank", sh)
		if err := svc.Put("bank", pairs[sh][0], 500); err != nil {
			t.Fatal(err)
		}
	}
	expected := uint64(clients*opsPer*delta + 500*shards)

	// Every ack above implies durability by tSafe on some worker clock.
	tSafe := svc.TotalStats().LastCommitDurable

	// Unacknowledged tail: sum-neutral transfers whose group commits
	// are still in flight when the power dies.
	for round := 0; round < 8; round++ {
		for sh := 0; sh < shards; sh++ {
			if _, err := svc.DoAsync(shard.Op{
				Kind: shard.OpTransfer, Tenant: "bank",
				Key: pairs[sh][0], Key2: pairs[sh][1], Value: 5,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	doneAt := svc.EndTime()
	cutAt := svc.TotalStats().LastCommitSubmit + time.Nanosecond
	if cutAt <= tSafe {
		cutAt = tSafe + time.Nanosecond
	}
	store.Array().CutPower(cutAt, sim.NewRNG(99))

	store2, at, err := memsnap.RecoverStore(cfg, store.Array(), doneAt)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := shard.New(store2, shard.Config{Shards: shards, BatchSize: 8, StartAt: at})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	var recovered uint64
	for _, rec := range svc2.Recovery() {
		if !rec.Existing {
			t.Fatalf("shard %d region missing after recovery", rec.Shard)
		}
		if !rec.Consistent() {
			t.Fatalf("shard %d manifest (%d records, sum %d) disagrees with scan (%d, %d)",
				rec.Shard, rec.Records, rec.ValueSum, rec.ScanRecords, rec.ScanSum)
		}
		recovered += rec.ValueSum
	}
	if recovered != expected {
		t.Fatalf("recovered cross-shard sum = %d; want %d", recovered, expected)
	}
	for sh := 0; sh < shards; sh++ {
		from, _, _ := svc2.Get("bank", pairs[sh][0])
		to, _, _ := svc2.Get("bank", pairs[sh][1])
		if from+to != 500 {
			t.Fatalf("shard %d pair conservation broken: %d + %d", sh, from, to)
		}
	}
}

// TestIntegrationAsyncPipelineDurability: a producer pipelines async
// persists; everything acknowledged by Wait survives a crash at any
// later point.
func TestIntegrationAsyncPipelineDurability(t *testing.T) {
	store, _ := memsnap.NewStore(memsnap.Config{})
	proc := store.NewProcess()
	ctx := proc.NewContext(0)
	region, _ := proc.Open(ctx, "pipe", 8<<20)

	const batches = 30
	var epochs []memsnap.Epoch
	for b := 0; b < batches; b++ {
		ctx.WriteAt(region, int64(b)*memsnap.PageSize, []byte{byte(b + 1)})
		e, err := ctx.Persist(region, memsnap.Async)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, e)
	}
	ctx.Wait(region, epochs[len(epochs)-1])

	crashAt := ctx.Clock().Now()
	store.Array().CutPower(crashAt, sim.NewRNG(5))
	store2, at, err := memsnap.RecoverStore(memsnap.Config{}, store.Array(), crashAt)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := store2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	region2, _ := proc2.Open(ctx2, "pipe", 8<<20)
	buf := make([]byte, 1)
	for b := 0; b < batches; b++ {
		ctx2.ReadAt(region2, int64(b)*memsnap.PageSize, buf)
		if buf[0] != byte(b+1) {
			t.Fatalf("batch %d lost after waited async persist", b)
		}
	}
}
