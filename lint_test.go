package memsnap_test

// TestLint is the enforcement point for the repo's design rules: it
// runs every internal/lint analyzer over the whole module, so the
// tier-1 `go test ./...` fails on any violation. The same suite is
// available standalone as `go run ./cmd/memsnap-lint ./...`.
//
// The rules (see DESIGN.md "Enforced invariants"):
//
//	walltime     - only sim.Clock may advance time
//	globalrand   - all randomness from the seeded sim.RNG
//	clockcapture - clocks are per-thread; pass them to goroutines explicitly
//	faultpath    - region memory is reached only through the vm.Thread API
//
// Escape hatch: //lint:allow <rule> <reason> on or above the line.

import (
	"testing"

	"memsnap/internal/lint"
)

func TestLint(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loader found only %d packages; module discovery is broken", len(pkgs))
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d design-rule violation(s); see DESIGN.md \"Enforced invariants\" for the rules and the //lint:allow escape hatch", len(diags))
	}
}
