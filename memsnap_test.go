package memsnap_test

import (
	"testing"

	"memsnap"
	"memsnap/internal/sim"
)

// TestQuickstartFlow exercises the documented public API end to end:
// open, write, persist, crash, recover.
func TestQuickstartFlow(t *testing.T) {
	store, err := memsnap.NewStore(memsnap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proc := store.NewProcess()
	ctx := proc.NewContext(0)
	region, err := proc.Open(ctx, "mydata", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctx.WriteAt(region, 0, []byte("hello"))
	epoch, err := ctx.Persist(region, memsnap.Sync)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d", epoch)
	}

	store.Array().CutPower(ctx.Clock().Now(), sim.NewRNG(1))
	store2, at, err := memsnap.RecoverStore(memsnap.Config{}, store.Array(), ctx.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	proc2 := store2.NewProcess()
	ctx2 := proc2.NewContext(0)
	ctx2.Clock().AdvanceTo(at)
	region2, err := proc2.Open(ctx2, "mydata", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	ctx2.ReadAt(region2, 0, buf)
	if string(buf) != "hello" {
		t.Fatalf("recovered %q", buf)
	}
}

func TestAsyncFlow(t *testing.T) {
	store, _ := memsnap.NewStore(memsnap.Config{})
	proc := store.NewProcess()
	ctx := proc.NewContext(0)
	region, _ := proc.Open(ctx, "r", 1<<20)
	ctx.WriteAt(region, 0, []byte("async"))
	epoch, err := ctx.Persist(region, memsnap.Async)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Wait(region, epoch)
	if ctx.OutstandingCheckpoints() != 0 {
		t.Fatal("outstanding after wait")
	}
}

func TestDefaultCostsExposed(t *testing.T) {
	c := memsnap.DefaultCosts()
	if c.DiskBaseLatency <= 0 {
		t.Fatal("cost model empty")
	}
}
